//! CLI entry point for `tailguard-lint`.
//!
//! ```text
//! tailguard-lint [--root DIR] [--json] [--list-rules] [--paths P...]
//!                [--changed-only P...] [--baseline FILE]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

// Diagnostics on stdout are this binary's interface.
#![allow(clippy::print_stdout)]
use std::path::PathBuf;
use std::process::ExitCode;

use tailguard_lint::baseline::subtract_baseline;
use tailguard_lint::rules::ALL_RULES;
use tailguard_lint::{lint_paths, lint_workspace_filtered};

const USAGE: &str = "\
tailguard-lint: workspace determinism & hygiene analyzer

USAGE:
    tailguard-lint [OPTIONS]

OPTIONS:
    --root <DIR>           Workspace root to lint (default: current directory)
    --paths <P>...         Lint these files/directories instead of the
                           workspace, with every rule enabled (fixture mode)
    --changed-only <P>...  Model the whole workspace (cross-file rules need
                           it) but report findings only for these files;
                           paths outside the scanned set are ignored
    --baseline <FILE>      Subtract a previous --json report: only findings
                           not present in the baseline are reported
    --json                 Emit the machine-readable JSON report on stdout
    --list-rules           Print the rule catalog and exit
    -h, --help             Show this help

Suppress a finding with a justified control comment on (or right above)
the offending line:
    // tg-lint: allow(<rule>[, <rule>...]) -- <why this site is exempt>

Mark an event-loop hot region (polices per-event allocation via hot-alloc):
    // tg-lint: hot(<region-name>)
    ...
    // tg-lint: endhot
";

struct Options {
    root: PathBuf,
    paths: Vec<PathBuf>,
    changed_only: Vec<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        paths: Vec::new(),
        changed_only: Vec::new(),
        baseline: None,
        json: false,
        list_rules: false,
    };
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                i += 1;
                let dir = args.get(i).ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--baseline" => {
                i += 1;
                let file = args.get(i).ok_or("--baseline needs a JSON report file")?;
                opts.baseline = Some(PathBuf::from(file));
            }
            "--paths" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    opts.paths.push(PathBuf::from(&args[i]));
                    i += 1;
                }
                if opts.paths.is_empty() {
                    return Err("--paths needs at least one file or directory".to_string());
                }
                continue;
            }
            "--changed-only" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    opts.changed_only.push(PathBuf::from(&args[i]));
                    i += 1;
                }
                if opts.changed_only.is_empty() {
                    return Err("--changed-only needs at least one file".to_string());
                }
                continue;
            }
            "-h" | "--help" => {
                return Err(String::new()); // triggers usage, exit 0 handled below
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if !opts.paths.is_empty() && !opts.changed_only.is_empty() {
        return Err("--paths and --changed-only are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wants_help = args.iter().any(|a| a == "-h" || a == "--help");
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if wants_help {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for &rule in ALL_RULES {
            println!("{:<16} {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let result = if !opts.paths.is_empty() {
        lint_paths(&opts.paths)
    } else if !opts.changed_only.is_empty() {
        lint_workspace_filtered(&opts.root, Some(&opts.changed_only))
    } else {
        lint_workspace_filtered(&opts.root, None)
    };
    let mut report = match result {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        if let Err(msg) = subtract_baseline(&mut report, &text) {
            eprintln!("error: baseline {}: {msg}", path.display());
            return ExitCode::from(2);
        }
    }

    if opts.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

//! The embedded workspace model: which crates are deterministic, which are
//! drivers, and which rules apply where.
//!
//! The classification mirrors DESIGN.md: the *deterministic* crates carry
//! the bit-reproducibility invariant behind every golden pin (virtual time
//! only, seeded RNG only, ordered collections), while the *driver* crates
//! (testbed, bench, CLI, and this linter) own wall clocks, I/O, and
//! threads by design. The table is embedded in the tool rather than read
//! from a config file so the invariant cannot drift silently out of CI.

use crate::rules::Rule;

/// How a crate participates in the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// Pure event-driven code: no wall clock, no OS entropy, no hash-order
    /// iteration, no panicking shortcuts in library paths.
    Deterministic,
    /// Runtime drivers that legitimately touch clocks, threads, and I/O.
    Driver,
}

/// Per-crate lint configuration.
#[derive(Debug, Clone, Copy)]
pub struct CrateConfig {
    /// Crate directory name under `crates/` (or `"."` for the root lib).
    pub name: &'static str,
    /// Determinism class.
    pub class: CrateClass,
    /// Whether `float-eq` applies: crates whose float comparisons feed the
    /// Eq. 6 budget math, CDF inversion, or policy ordering.
    pub float_strict: bool,
}

/// The workspace table. Order is the deterministic scan order.
pub const CRATES: &[CrateConfig] = &[
    CrateConfig {
        name: "simcore",
        class: CrateClass::Deterministic,
        float_strict: false,
    },
    CrateConfig {
        name: "dist",
        class: CrateClass::Deterministic,
        float_strict: true,
    },
    CrateConfig {
        name: "metrics",
        class: CrateClass::Deterministic,
        float_strict: false,
    },
    CrateConfig {
        name: "workload",
        class: CrateClass::Deterministic,
        float_strict: false,
    },
    CrateConfig {
        name: "policy",
        class: CrateClass::Deterministic,
        float_strict: true,
    },
    CrateConfig {
        name: "lifecycle",
        class: CrateClass::Deterministic,
        float_strict: false,
    },
    CrateConfig {
        name: "sched",
        class: CrateClass::Deterministic,
        float_strict: true,
    },
    CrateConfig {
        name: "faults",
        class: CrateClass::Deterministic,
        float_strict: false,
    },
    CrateConfig {
        name: "core",
        class: CrateClass::Deterministic,
        float_strict: false,
    },
    CrateConfig {
        name: "obs",
        class: CrateClass::Deterministic,
        float_strict: false,
    },
    CrateConfig {
        name: "testbed",
        class: CrateClass::Driver,
        float_strict: false,
    },
    CrateConfig {
        name: "bench",
        class: CrateClass::Driver,
        float_strict: false,
    },
    CrateConfig {
        name: "cli",
        class: CrateClass::Driver,
        float_strict: false,
    },
    CrateConfig {
        name: "lint",
        class: CrateClass::Driver,
        float_strict: false,
    },
    // The workspace-root umbrella lib (`src/lib.rs`): re-exports only, but
    // it is glue for integration tests, so it is driver-side.
    CrateConfig {
        name: ".",
        class: CrateClass::Driver,
        float_strict: false,
    },
];

/// The synthetic config used in `--paths` mode (fixtures, ad-hoc files):
/// strictest settings so every rule is exercised.
pub const STRICT: CrateConfig = CrateConfig {
    name: "<paths>",
    class: CrateClass::Deterministic,
    float_strict: true,
};

/// Looks up a crate by directory name.
pub fn crate_config(name: &str) -> Option<&'static CrateConfig> {
    CRATES.iter().find(|c| c.name == name)
}

/// Whether `rule` applies to code in `cfg` (test code is always exempt;
/// that filtering happens in the rule engine, not here).
pub fn rule_applies(rule: Rule, cfg: &CrateConfig) -> bool {
    match rule {
        Rule::WallClock | Rule::OsEntropy | Rule::HashOrder | Rule::UnwrapInLib => {
            cfg.class == CrateClass::Deterministic
        }
        // The cast/panic audit and the cross-crate doc contract are scoped
        // to deterministic library code: drivers legitimately bridge to
        // std::time (u128 nanos) and OS APIs, and their conversions are
        // covered by targeted tests instead (see crates/testbed).
        Rule::LossyCast | Rule::PanicSurface | Rule::PubDocDrift => {
            cfg.class == CrateClass::Deterministic
        }
        Rule::FloatEq => cfg.float_strict,
        // Hot regions only exist where someone wrote a `hot(...)` marker,
        // so the rule is cheap to leave on everywhere.
        Rule::TodoMarker | Rule::HotAlloc | Rule::MalformedAllow => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_crates_get_determinism_rules() {
        let sched = crate_config("sched").unwrap();
        assert!(rule_applies(Rule::WallClock, sched));
        assert!(rule_applies(Rule::FloatEq, sched));
        let testbed = crate_config("testbed").unwrap();
        assert!(!rule_applies(Rule::WallClock, testbed));
        assert!(rule_applies(Rule::TodoMarker, testbed));
    }

    #[test]
    fn float_eq_scope_is_sched_dist_policy() {
        for name in ["sched", "dist", "policy"] {
            assert!(crate_config(name).unwrap().float_strict, "{name}");
        }
        for name in [
            "simcore",
            "metrics",
            "workload",
            "lifecycle",
            "faults",
            "core",
            "obs",
        ] {
            assert!(!crate_config(name).unwrap().float_strict, "{name}");
        }
    }
}

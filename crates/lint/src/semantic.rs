//! Pass 2 of the semantic analyzer: rules that need the file model.
//!
//! Four rules live here, each tied to a concrete SLO failure mode (see
//! DESIGN.md §13 for the full table):
//!
//! - **`lossy-cast`** — a numeric `as` cast that can silently truncate a
//!   deadline, lease TTL, or trace timestamp. Every cast's operand type is
//!   inferred from the local model (lets, params, consts, fields, a method
//!   table); narrowing, float→int, and f64→f32 casts are flagged, as are
//!   integer-target casts whose operand type cannot be proven.
//! - **`panic-surface`** — computed indexing/slicing, `/`·`%` by a
//!   non-literal divisor, and unsigned `-` in deterministic library code:
//!   the constructs that turn one bad timestamp into a panicked scheduler
//!   and a dropped query.
//! - **`hot-alloc`** — heap allocation inside a `// tg-lint: hot(<label>)`
//!   region: the marked event-loop code where an allocation per event
//!   shows up directly in the tail.
//! - **`pub-doc-drift`** — a `pub fn` used by another workspace crate
//!   whose time-typed parameters are not documented with their unit
//!   (ms/ns/virtual/wall): the cross-crate misuse that produced the Pi→
//!   wall TTL scaling bug.
//!
//! Inference is deliberately conservative and local. Where the type of an
//! operand cannot be established the rules err in opposite directions by
//! design: `lossy-cast` *flags* unknown-operand casts to integer targets
//! (rewriting to `From`/`try_from`/`sched::units` makes the conversion
//! self-documenting), while `panic-surface` division/subtraction *skips*
//! fully-unknown operands (precision over recall — flagged sites must be
//! actionable).

use std::collections::BTreeSet;

use crate::config::CrateConfig;
use crate::model::{FileModel, Param};
use crate::rules::Rule;
use crate::scanner::{contains_word, find_words, ScannedFile};
use crate::types::{classify_cast, CastClass, Num};

/// A semantic finding before allow filtering (the engine in
/// [`crate::rules`] matches these against `allow` directives).
#[derive(Debug)]
pub struct Candidate {
    /// The rule that fired.
    pub rule: Rule,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Why this is a violation.
    pub message: String,
}

/// Runs all semantic rules over one modeled file. `external_idents` is the
/// union of identifiers used by *other* crates (for `pub-doc-drift`
/// reachability); `None` means treat every pub fn as reachable (fixture /
/// `--paths` mode).
pub fn candidates(
    file: &ScannedFile,
    model: &FileModel,
    cfg: &CrateConfig,
    external_idents: Option<&BTreeSet<String>>,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    let lossy = crate::config::rule_applies(Rule::LossyCast, cfg);
    let panic_s = crate::config::rule_applies(Rule::PanicSurface, cfg);
    let hot = crate::config::rule_applies(Rule::HotAlloc, cfg);
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let chars: Vec<char> = line.code.chars().collect();
        if lossy {
            check_casts(&line.code, &chars, line.number, model, &mut out);
        }
        if panic_s {
            check_indexing(&chars, line.number, model, &mut out);
            check_div_mod(&chars, line.number, model, &mut out);
            check_unsigned_sub(&chars, line.number, model, &mut out);
        }
        if hot {
            if let Some(region) = model.in_hot_region(line.number) {
                check_hot_alloc(&line.code, line.number, &region.label, &mut out);
            }
        }
    }
    if crate::config::rule_applies(Rule::PubDocDrift, cfg) {
        check_doc_drift(model, external_idents, &mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// lossy-cast

fn check_casts(code: &str, chars: &[char], line: u32, model: &FileModel, out: &mut Vec<Candidate>) {
    for pos in find_words(code, "as") {
        let ci = byte_to_char(code, pos);
        let Some(dst_name) = ident_after(chars, ci + 2) else {
            continue;
        };
        let Some(dst) = Num::parse(&dst_name) else {
            continue; // `as SomeType` / `as _` / `use x as y` — not numeric
        };
        let Some((start, operand)) = primary_before(chars, ci) else {
            continue;
        };
        // `x as u32 as u64`: the operand of the outer cast is the result
        // of the inner one.
        let src = if let Some(inner) = Num::parse(&operand) {
            if word_before_is(chars, start, "as") {
                Ty::Known(inner)
            } else {
                infer(&operand, line, model)
            }
        } else {
            infer(&operand, line, model)
        };
        match src {
            Ty::Known(src) => {
                let class = classify_cast(src, dst);
                if class.is_lossy() {
                    out.push(Candidate {
                        rule: Rule::LossyCast,
                        line,
                        col: ci as u32 + 1,
                        message: lossy_message(src, dst, class),
                    });
                }
            }
            Ty::IntLit => {} // literal operands are compile-time visible
            // Unknown-operand policy: casting into a sub-64-bit integer is
            // flagged (this workspace's native domain is u64 nanoseconds,
            // so a narrow target is near-always a truncation — the codec/
            // TTL bug class); casting into u64-or-wider or into float is
            // accepted (widening under the 64-bit usize model, or the
            // reporting domain).
            Ty::Unknown if dst.is_int() && sub64(dst) => out.push(Candidate {
                rule: Rule::LossyCast,
                line,
                col: ci as u32 + 1,
                message: format!(
                    "cannot prove `as {}` lossless here (operand `{}` has no locally \
                     inferable type, and the target is narrower than the workspace's \
                     u64 domain); use `{}::from`/`{}::try_from` or a `sched::units` \
                     helper so the conversion states its policy",
                    dst.name(),
                    operand,
                    dst.name(),
                    dst.name()
                ),
            }),
            Ty::Unknown => {}
        }
    }
}

/// True for integer types narrower than the workspace's u64 time domain.
fn sub64(n: Num) -> bool {
    matches!(
        n,
        Num::U8 | Num::U16 | Num::U32 | Num::I8 | Num::I16 | Num::I32
    )
}

fn lossy_message(src: Num, dst: Num, class: CastClass) -> String {
    match class {
        CastClass::Narrowing => format!(
            "`{} as {}` silently truncates out-of-range values; use \
             `{}::try_from` or a `sched::units` saturating helper",
            src.name(),
            dst.name(),
            dst.name()
        ),
        CastClass::FloatTrunc => format!(
            "`{} as {}` truncates toward zero and maps NaN to 0; use \
             `sched::units::sat_f64_to_u64`-style helpers that state the \
             clamping policy",
            src.name(),
            dst.name()
        ),
        CastClass::FloatNarrow => format!(
            "`{} as {}` rounds and can overflow to infinity; keep f64 or \
             justify the precision loss",
            src.name(),
            dst.name()
        ),
        CastClass::Widening | CastClass::IntToFloat => String::new(),
    }
}

// ---------------------------------------------------------------------------
// panic-surface

fn check_indexing(chars: &[char], line: u32, model: &FileModel, out: &mut Vec<Candidate>) {
    for i in 0..chars.len() {
        if chars[i] != '[' {
            continue;
        }
        let Some(p) = prev_non_space(chars, i) else {
            continue;
        };
        if !(is_ident_char(chars[p]) || chars[p] == ')' || chars[p] == ']') {
            continue; // array literal / type / attribute, not an index expr
        }
        // `&'a [T]` / `&mut [u8; N]` / `dyn [T]`-ish positions are slice
        // or array *types*: the word before `[` is a lifetime or a type
        // keyword, not an indexed expression.
        if is_lifetime_before(chars, p) {
            continue;
        }
        let before: String = ident_ending_at(chars, p);
        if matches!(
            before.as_str(),
            "mut" | "dyn" | "impl" | "in" | "return" | "break"
        ) {
            continue;
        }
        let Some(close) = matching_forward(chars, i) else {
            continue;
        };
        let content: String = chars[i + 1..close].iter().collect();
        // Literal-only indices (`buf[0]`, `&buf[..4]`) are audit-visible
        // and covered by tests; the latent panic class is computed indices.
        if !content.chars().any(|c| c.is_alphabetic() || c == '_') {
            continue;
        }
        // A bare `for i in <range>` loop variable: its bound is stated at
        // the loop header, so the site is locally auditable.
        if model.range_loop_vars.contains(content.trim()) {
            continue;
        }
        out.push(Candidate {
            rule: Rule::PanicSurface,
            line,
            col: i as u32 + 1,
            message: format!(
                "computed index/slice `[{}]` panics when out of range; use \
                 `.get()`/`.get_mut()`/checked split forms, or justify the \
                 bound with allow(panic-surface)",
                content.trim()
            ),
        });
    }
}

/// True when the text at `j` (after optional spaces) reads `as f32`/`as
/// f64` — the operand that precedes it participates as a float.
fn cast_to_float_after(chars: &[char], j: usize) -> bool {
    let mut k = j;
    while k < chars.len() && chars[k] == ' ' {
        k += 1;
    }
    let word_at = |mut k: usize| -> (String, usize) {
        let start = k;
        while k < chars.len() && is_ident_char(chars[k]) {
            k += 1;
        }
        (chars[start..k].iter().collect(), k)
    };
    let (w1, after) = word_at(k);
    if w1 != "as" {
        return false;
    }
    let mut k = after;
    while k < chars.len() && chars[k] == ' ' {
        k += 1;
    }
    let (w2, _) = word_at(k);
    matches!(w2.as_str(), "f32" | "f64")
}

/// True when the operand ending just before operator index `i` is an
/// `as f32`/`as f64` cast (`x as f64 / y`): float arithmetic.
fn lhs_is_float_cast(chars: &[char], i: usize) -> bool {
    let mut j = i;
    while j > 0 && chars[j - 1] == ' ' {
        j -= 1;
    }
    if j == 0 || !is_ident_char(chars[j - 1]) {
        return false;
    }
    let word = ident_ending_at(chars, j - 1);
    if !matches!(word.as_str(), "f32" | "f64") {
        return false;
    }
    word_before_is(chars, j - word.chars().count(), "as")
}

/// True when `expr` is a bare `SCREAMING_CASE` constant or a path ending
/// in one (`EVENT_BYTES`, `Self::WIDTH`, `u32::MAX`).
fn is_const_path(expr: &str) -> bool {
    let last = expr.rsplit("::").next().unwrap_or(expr);
    !last.is_empty()
        && last
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// The identifier whose last character sits at `p` (empty when `p` is not
/// an identifier character).
fn ident_ending_at(chars: &[char], p: usize) -> String {
    let mut start = p;
    if !is_ident_char(chars[p]) {
        return String::new();
    }
    while start > 0 && is_ident_char(chars[start - 1]) {
        start -= 1;
    }
    chars[start..=p].iter().collect()
}

/// True when the identifier ending at `p` is a `'lifetime` (so `&'a [T]`
/// reads as a slice type, not an index expression).
fn is_lifetime_before(chars: &[char], p: usize) -> bool {
    let mut j = p;
    while is_ident_char(chars[j]) {
        if j == 0 {
            return false;
        }
        j -= 1;
    }
    chars[j] == '\''
}

fn check_div_mod(chars: &[char], line: u32, model: &FileModel, out: &mut Vec<Candidate>) {
    for i in 0..chars.len() {
        let c = chars[i];
        if c != '/' && c != '%' {
            continue;
        }
        let Some(p) = prev_non_space(chars, i) else {
            continue;
        };
        if !(is_ident_char(chars[p]) || chars[p] == ')' || chars[p] == ']') {
            continue; // not a binary operator position
        }
        let rhs_from = if chars.get(i + 1) == Some(&'=') {
            i + 2 // `/=` and `%=` compound assignment
        } else {
            i + 1
        };
        let Some((rhs_end, rhs)) = primary_after(chars, rhs_from) else {
            continue;
        };
        if is_int_literal(&rhs) || is_float_literal(&rhs) {
            continue; // non-zero literal divisors cannot panic (x / 0 is a compile error)
        }
        // `a as f64 / b as f64` is float division on both sides even when
        // the operand primaries read as integers: honor the casts.
        if cast_to_float_after(chars, rhs_end) || lhs_is_float_cast(chars, i) {
            continue;
        }
        // A SCREAMING_CASE constant divisor (`len / EVENT_BYTES`) is as
        // audit-visible as a literal: its value is pinned at compile time.
        if is_const_path(&rhs) {
            continue;
        }
        let Some((_, lhs)) = primary_before(chars, i) else {
            continue;
        };
        let lt = infer(&lhs, line, model);
        let rt = infer(&rhs, line, model);
        if lt.is_float() || rt.is_float() {
            continue; // float division never panics
        }
        // Precision over recall: only flag when an operand provably
        // carries an integer type.
        if lt.is_int() || rt.is_int() {
            out.push(Candidate {
                rule: Rule::PanicSurface,
                line,
                col: i as u32 + 1,
                message: format!(
                    "integer `{c}` by non-literal `{rhs}` panics when the divisor is \
                     zero; use `checked_div`/`checked_rem` or justify non-zero with \
                     allow(panic-surface)"
                ),
            });
        }
    }
}

fn check_unsigned_sub(chars: &[char], line: u32, model: &FileModel, out: &mut Vec<Candidate>) {
    for i in 0..chars.len() {
        if chars[i] != '-' {
            continue;
        }
        if chars.get(i + 1) == Some(&'>') {
            continue; // return arrow
        }
        // Exponent in a float literal: `1e-9`.
        if i >= 2 && (chars[i - 1] == 'e' || chars[i - 1] == 'E') && chars[i - 2].is_ascii_digit() {
            continue;
        }
        let Some(p) = prev_non_space(chars, i) else {
            continue;
        };
        if !(is_ident_char(chars[p]) || chars[p] == ')' || chars[p] == ']') {
            continue; // unary minus
        }
        let rhs_from = if chars.get(i + 1) == Some(&'=') {
            i + 2 // `-=`
        } else {
            i + 1
        };
        let Some((_, lhs)) = primary_before(chars, i) else {
            continue;
        };
        let Some((_, rhs)) = primary_after(chars, rhs_from) else {
            continue;
        };
        let lt = infer(&lhs, line, model);
        let rt = infer(&rhs, line, model);
        let unsigned_side = match (&lt, &rt) {
            (Ty::Known(n), _) if n.is_unsigned() => Some(lhs.as_str()),
            (_, Ty::Known(n)) if n.is_unsigned() => Some(rhs.as_str()),
            _ => None,
        };
        if lt.is_float() || rt.is_float() {
            continue;
        }
        if let Some(side) = unsigned_side {
            out.push(Candidate {
                rule: Rule::PanicSurface,
                line,
                col: i as u32 + 1,
                message: format!(
                    "unsigned subtraction (`{side}` is unsigned) underflows — a panic \
                     in debug, a wrapped huge value in release; use `saturating_sub`/\
                     `checked_sub` or `sched::units::signed_ns_delta`"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// hot-alloc

/// Allocation patterns that must not appear per-event in hot regions.
const HOT_ALLOC_SUBSTR: &[&str] = &[
    "Vec::new(",
    "VecDeque::new(",
    "String::new(",
    "Box::new(",
    "BTreeMap::new(",
    "BTreeSet::new(",
    ".to_string()",
    ".to_owned()",
    ".to_vec()",
    ".collect()",
    ".collect::<",
];

fn check_hot_alloc(code: &str, line: u32, label: &str, out: &mut Vec<Candidate>) {
    let mut hits: Vec<(usize, String)> = Vec::new();
    for &pat in HOT_ALLOC_SUBSTR {
        hits.extend(code.match_indices(pat).map(|(p, _)| (p, pat.to_string())));
    }
    let word = "with_capacity";
    hits.extend(find_words(code, word).map(|p| (p, word.to_string())));
    for mac in ["vec", "format"] {
        for p in find_words(code, mac) {
            if code[p + mac.len()..].starts_with('!') {
                hits.push((p, format!("{mac}!")));
            }
        }
    }
    hits.sort();
    for (p, what) in hits {
        out.push(Candidate {
            rule: Rule::HotAlloc,
            line,
            col: p as u32 + 1,
            message: format!(
                "`{what}` allocates inside hot region `{label}`; preallocate outside \
                 the event loop or justify with allow(hot-alloc)"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// pub-doc-drift

/// Name segments that mark a numeric parameter as time-valued.
const TIME_SEGMENTS: &[&str] = &[
    "ms", "ns", "us", "nanos", "millis", "micros", "secs", "deadline", "timeout", "now", "ttl",
    "elapsed", "delay", "interval", "period", "latency",
];

/// Unit words a doc comment must mention for a time-typed parameter
/// (checked lowercase, word-bounded).
const UNIT_WORDS: &[&str] = &[
    "ms",
    "ns",
    "us",
    "millis",
    "milliseconds",
    "nanos",
    "nanoseconds",
    "micros",
    "microseconds",
    "secs",
    "seconds",
    "virtual",
    "wall",
    "simtime",
    "simduration",
];

fn check_doc_drift(
    model: &FileModel,
    external_idents: Option<&BTreeSet<String>>,
    out: &mut Vec<Candidate>,
) {
    for f in &model.fns {
        if f.in_test || !f.is_pub {
            continue;
        }
        if let Some(used) = external_idents {
            if !used.contains(&f.name) {
                continue; // not reachable from any other workspace crate
            }
        }
        let Some(p) = f.params.iter().find(|p| is_time_typed(p)) else {
            continue;
        };
        let doc = f.doc.to_lowercase();
        if UNIT_WORDS.iter().any(|w| contains_word(&doc, w)) {
            continue;
        }
        out.push(Candidate {
            rule: Rule::PubDocDrift,
            line: f.sig_line,
            col: 1,
            message: format!(
                "pub fn `{}` takes time-typed `{}: {}` but its doc never states the \
                 unit (ms/ns/micros/secs, virtual/wall); callers in other crates \
                 cannot know the domain",
                f.name, p.name, p.ty
            ),
        });
    }
}

fn is_time_typed(p: &Param) -> bool {
    for w in ["SimTime", "SimDuration", "Duration", "Instant"] {
        if contains_word(&p.ty, w) {
            return true;
        }
    }
    let base =
        p.ty.trim_start_matches('&')
            .trim_start_matches("mut ")
            .trim();
    if Num::parse(base).is_none() {
        return false;
    }
    p.name.split('_').any(|seg| TIME_SEGMENTS.contains(&seg))
}

// ---------------------------------------------------------------------------
// expression type inference

/// What inference can say about an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    /// A definite primitive numeric type.
    Known(Num),
    /// An unsuffixed integer literal: adapts to context, never flagged.
    IntLit,
    /// No local evidence.
    Unknown,
}

impl Ty {
    fn is_float(self) -> bool {
        matches!(self, Ty::Known(n) if n.is_float())
    }
    fn is_int(self) -> bool {
        matches!(self, Ty::Known(n) if n.is_int())
    }
}

/// Infers the type of an expression string as seen at `line`.
fn infer(expr: &str, line: u32, model: &FileModel) -> Ty {
    infer_depth(expr, line, model, 0)
}

fn infer_depth(expr: &str, line: u32, model: &FileModel, depth: u32) -> Ty {
    if depth > 8 {
        return Ty::Unknown;
    }
    let e = strip_outer_parens(expr.trim());
    if e.is_empty() {
        return Ty::Unknown;
    }
    // A top-level `as T` fixes the type: binary operands must match the
    // cast result, so the rightmost paren-level-0 target wins.
    if let Some(t) = rightmost_cast_target(e) {
        if let Some(n) = Num::parse(&t) {
            return Ty::Known(n);
        }
        return Ty::Unknown;
    }
    // Shifts keep the left operand's type.
    if let Some(lhs) = split_before_top_level(e, &["<<", ">>"]) {
        return infer_depth(lhs, line, model, depth + 1);
    }
    // Binary arithmetic: operands share one type; combine what we learn.
    if let Some(parts) = split_top_level_arith(e) {
        let mut acc = Ty::IntLit;
        for part in parts {
            match infer_depth(part, line, model, depth + 1) {
                Ty::Known(n) if n.is_float() => return Ty::Known(n),
                Ty::Known(n) => {
                    if acc == Ty::IntLit || acc == Ty::Unknown {
                        acc = Ty::Known(n);
                    }
                }
                Ty::IntLit => {}
                Ty::Unknown => {
                    if acc == Ty::IntLit {
                        acc = Ty::Unknown;
                    }
                }
            }
        }
        return acc;
    }
    // Unary prefixes preserve the numeric type.
    for pre in ['-', '!', '*', '&'] {
        if let Some(rest) = e.strip_prefix(pre) {
            return infer_depth(rest, line, model, depth + 1);
        }
    }
    infer_primary(e, line, model, depth)
}

fn infer_primary(e: &str, line: u32, model: &FileModel, depth: u32) -> Ty {
    if let Some(t) = literal_type(e) {
        return t;
    }
    if e.ends_with(')') {
        return infer_call(e, line, model, depth);
    }
    if e.ends_with(']') {
        return infer_index(e, line, model);
    }
    if let Some((prefix, last)) = e.rsplit_once("::") {
        // `u64::MAX`, `f64::INFINITY`: the prefix type; `Self::LIMIT`: the
        // const table.
        if let Some(n) = Num::parse(prefix.rsplit("::").next().unwrap_or(prefix)) {
            return Ty::Known(n);
        }
        if let Some(ty) = model.consts.get(last) {
            return parse_ty(ty);
        }
        return Ty::Unknown;
    }
    if let Some((_, field)) = e.rsplit_once('.') {
        if field.chars().all(|c| c.is_ascii_digit()) {
            return Ty::Unknown; // tuple index
        }
        if e.starts_with("self.") && e.matches('.').count() == 1 {
            if let Some(ty) = model.lookup_field(field) {
                return parse_ty(ty);
            }
            return Ty::Unknown;
        }
        if let Some(ty) = model.lookup_field(field) {
            return parse_ty(ty);
        }
        return Ty::Unknown;
    }
    if let Some(ty) = model.lookup_type(e, line) {
        return parse_ty(ty);
    }
    Ty::Unknown
}

/// Method-call and fn-call inference via a small table of workspace idioms.
fn infer_call(e: &str, line: u32, model: &FileModel, depth: u32) -> Ty {
    let Some(open) = matching_back_from_end(e) else {
        return Ty::Unknown;
    };
    let head = &e[..open];
    // `u64::from(x)` / `f64::from(x)`.
    if let Some(prefix) = head.strip_suffix("::from") {
        if let Some(n) = Num::parse(prefix.rsplit("::").next().unwrap_or(prefix)) {
            return Ty::Known(n);
        }
    }
    let Some((recv, method)) = head.rsplit_once('.') else {
        return Ty::Unknown; // free fn call — no return-type table
    };
    match method {
        "len" | "count" | "capacity" => Ty::Known(Num::Usize),
        // Deterministic crates ban std::time, so `as_nanos`-family calls
        // are the SimTime/SimDuration u64 accessors.
        "as_nanos" | "as_micros" | "as_millis" | "as_secs" => Ty::Known(Num::U64),
        "as_millis_f64" | "as_secs_f64" => Ty::Known(Num::F64),
        "to_bits" => Ty::Known(Num::U64),
        "leading_zeros" | "trailing_zeros" | "count_ones" | "count_zeros" => Ty::Known(Num::U32),
        "round" | "ceil" | "floor" | "trunc" | "fract" | "sqrt" | "cbrt" | "powf" | "powi"
        | "exp" | "exp2" | "ln" | "log2" | "log10" | "recip" | "to_radians" | "to_degrees"
        | "hypot" | "atan2" | "mul_add" => Ty::Known(Num::F64),
        "min" | "max" | "clamp" | "abs" | "pow" | "signum" | "rem_euclid" | "div_euclid"
        | "midpoint" => infer_depth(recv, line, model, depth + 1),
        m if m.starts_with("saturating_") || m.starts_with("wrapping_") => {
            infer_depth(recv, line, model, depth + 1)
        }
        _ => Ty::Unknown,
    }
}

/// `recv[...]`: element type when the receiver is a visible slice/array/Vec
/// of a primitive.
fn infer_index(e: &str, line: u32, model: &FileModel) -> Ty {
    let Some(open) = matching_back_from_end(e) else {
        return Ty::Unknown;
    };
    let recv = &e[..open];
    let ty = if let Some((_, field)) = recv.rsplit_once('.') {
        model.lookup_field(field)
    } else {
        model.lookup_type(recv, line)
    };
    let Some(ty) = ty else { return Ty::Unknown };
    elem_ty(ty)
}

/// The element type of `&[T]` / `&mut [T]` / `[T; N]` / `Vec<T>`.
fn elem_ty(ty: &str) -> Ty {
    let t = ty.trim_start_matches('&').trim_start_matches("mut ").trim();
    let inner = if let Some(rest) = t.strip_prefix('[') {
        rest.split([';', ']']).next()
    } else if let Some(rest) = t.strip_prefix("Vec<") {
        rest.strip_suffix('>')
    } else {
        None
    };
    match inner.map(str::trim).and_then(Num::parse) {
        Some(n) => Ty::Known(n),
        None => Ty::Unknown,
    }
}

/// Type-ascription text → primitive, if it is one (modulo `&`/`mut`).
fn parse_ty(ty: &str) -> Ty {
    let t = ty.trim_start_matches('&').trim_start_matches("mut ").trim();
    match Num::parse(t) {
        Some(n) => Ty::Known(n),
        None => Ty::Unknown,
    }
}

/// Numeric literal classification: suffixed → its type, unsuffixed float →
/// f64, unsuffixed int → the adaptable `IntLit`.
fn literal_type(e: &str) -> Option<Ty> {
    let first = e.chars().next()?;
    if !first.is_ascii_digit() {
        return None;
    }
    for (suffix, n) in [
        ("u8", Num::U8),
        ("u16", Num::U16),
        ("u32", Num::U32),
        ("u64", Num::U64),
        ("u128", Num::U128),
        ("usize", Num::Usize),
        ("i8", Num::I8),
        ("i16", Num::I16),
        ("i32", Num::I32),
        ("i64", Num::I64),
        ("i128", Num::I128),
        ("isize", Num::Isize),
        ("f32", Num::F32),
        ("f64", Num::F64),
    ] {
        if e.ends_with(suffix) {
            return Some(Ty::Known(n));
        }
    }
    if is_float_literal(e) {
        return Some(Ty::Known(Num::F64));
    }
    if is_int_literal(e) {
        return Some(Ty::IntLit);
    }
    // Digit-led but not a clean literal (e.g. a malformed token): abstain.
    Some(Ty::Unknown)
}

fn is_int_literal(e: &str) -> bool {
    let body = e
        .strip_prefix("0x")
        .or_else(|| e.strip_prefix("0b"))
        .or_else(|| e.strip_prefix("0o"));
    match body {
        Some(b) => !b.is_empty() && b.chars().all(|c| c.is_ascii_hexdigit() || c == '_'),
        None => !e.is_empty() && e.chars().all(|c| c.is_ascii_digit() || c == '_'),
    }
}

fn is_float_literal(e: &str) -> bool {
    let e = e.trim_end_matches("f64").trim_end_matches("f32");
    let mut has_digit = false;
    let mut has_marker = false;
    for c in e.chars() {
        match c {
            '0'..='9' | '_' => has_digit = true,
            '.' | 'e' | 'E' => has_marker = true,
            '-' | '+' => {}
            _ => return false,
        }
    }
    has_digit && has_marker && e.chars().next().is_some_and(|c| c.is_ascii_digit())
}

// ---------------------------------------------------------------------------
// string surgery helpers

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn byte_to_char(s: &str, byte: usize) -> usize {
    s[..byte].chars().count()
}

fn prev_non_space(chars: &[char], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| chars[j] != ' ')
}

/// Index of the `]`/`)` matching the opener at `i`.
fn matching_forward(chars: &[char], i: usize) -> Option<usize> {
    let (open, close) = match chars[i] {
        '[' => ('[', ']'),
        '(' => ('(', ')'),
        _ => return None,
    };
    let mut depth = 0i32;
    for (j, &c) in chars.iter().enumerate().skip(i) {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// For a string ending in `)` or `]`: byte index of the matching opener.
fn matching_back_from_end(e: &str) -> Option<usize> {
    let chars: Vec<char> = e.chars().collect();
    let last = *chars.last()?;
    let (open, close) = match last {
        ')' => ('(', ')'),
        ']' => ('[', ']'),
        _ => return None,
    };
    let mut depth = 0i32;
    for j in (0..chars.len()).rev() {
        if chars[j] == close {
            depth += 1;
        } else if chars[j] == open {
            depth -= 1;
            if depth == 0 {
                let byte = e.char_indices().nth(j).map(|(b, _)| b)?;
                return Some(byte);
            }
        }
    }
    None
}

/// The primary-expression chain ending just before `i` (exclusive):
/// identifiers, `.`, `::`, and balanced `(...)`/`[...]` groups, walked
/// backward. Returns `(start_index, text)`.
fn primary_before(chars: &[char], i: usize) -> Option<(usize, String)> {
    let mut end = i;
    while end > 0 && chars[end - 1] == ' ' {
        end -= 1;
    }
    let stop = end;
    let mut j = end;
    loop {
        if j == 0 {
            break;
        }
        let c = chars[j - 1];
        if is_ident_char(c) || c == '.' {
            j -= 1;
        } else if c == ')' || c == ']' {
            let (open, close) = if c == ')' { ('(', ')') } else { ('[', ']') };
            let mut depth = 0i32;
            let mut k = j;
            let mut matched = false;
            while k > 0 {
                let d = chars[k - 1];
                if d == close {
                    depth += 1;
                } else if d == open {
                    depth -= 1;
                    if depth == 0 {
                        k -= 1;
                        matched = true;
                        break;
                    }
                }
                k -= 1;
            }
            if !matched {
                break;
            }
            j = k;
        } else if c == ':' && j >= 2 && chars[j - 2] == ':' {
            j -= 2;
        } else {
            break;
        }
    }
    (j < stop).then(|| {
        let text: String = chars[j..stop].iter().collect();
        (j, text.trim().to_string())
    })
}

/// The primary-expression chain starting at/after `i` (skipping spaces and
/// unary prefixes). Returns `(end_index, text)`.
fn primary_after(chars: &[char], i: usize) -> Option<(usize, String)> {
    let mut j = i;
    while j < chars.len() && chars[j] == ' ' {
        j += 1;
    }
    let start = j;
    while j < chars.len() && matches!(chars[j], '-' | '!' | '*' | '&') {
        j += 1;
    }
    loop {
        if j >= chars.len() {
            break;
        }
        let c = chars[j];
        if is_ident_char(c) || c == '.' {
            j += 1;
        } else if c == '(' || c == '[' {
            match matching_forward(chars, j) {
                Some(close) => j = close + 1,
                None => break,
            }
        } else if c == ':' && chars.get(j + 1) == Some(&':') {
            j += 2;
        } else {
            break;
        }
    }
    (j > start).then(|| {
        let text: String = chars[start..j].iter().collect();
        (j, text.trim().to_string())
    })
}

/// True when the word immediately before index `start` is `word`.
fn word_before_is(chars: &[char], start: usize, word: &str) -> bool {
    let mut j = start;
    while j > 0 && chars[j - 1] == ' ' {
        j -= 1;
    }
    let end = j;
    while j > 0 && is_ident_char(chars[j - 1]) {
        j -= 1;
    }
    let tok: String = chars[j..end].iter().collect();
    tok == word
}

fn strip_outer_parens(e: &str) -> &str {
    let mut e = e;
    loop {
        let stripped = e.strip_prefix('(').and_then(|r| r.strip_suffix(')'));
        let Some(inner) = stripped else { return e };
        // Only strip when the outer pair actually matches.
        let mut depth = 0i32;
        let mut ok = true;
        for (k, c) in inner.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth < 0 && k < inner.len() {
                        ok = false;
                        break;
                    }
                }
                _ => {}
            }
        }
        if !ok || depth != 0 {
            return e;
        }
        e = inner.trim();
    }
}

/// Byte position after which the rightmost paren-level-0 ` as ` target
/// starts; returns the target type token.
fn rightmost_cast_target(e: &str) -> Option<String> {
    let chars: Vec<char> = e.chars().collect();
    let mut best: Option<String> = None;
    let mut depth = 0i32;
    let mut idx = 0usize;
    for pos in find_words(e, "as") {
        // Compute depth at this byte position.
        let ci = byte_to_char(e, pos);
        while idx < ci {
            match chars[idx] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                _ => {}
            }
            idx += 1;
        }
        if depth == 0 {
            if let Some(t) = ident_after(&chars, ci + 2) {
                best = Some(t);
            }
        }
    }
    best
}

/// Splits at the first top-level occurrence of any needle, returning the
/// left side.
fn split_before_top_level<'a>(e: &'a str, needles: &[&str]) -> Option<&'a str> {
    let chars: Vec<char> = e.chars().collect();
    let mut depth = 0i32;
    for j in 0..chars.len() {
        match chars[j] {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            _ => {}
        }
        if depth > 0 {
            continue;
        }
        for n in needles {
            let nch: Vec<char> = n.chars().collect();
            if chars[j..].starts_with(&nch) {
                let byte = e.char_indices().nth(j).map(|(b, _)| b)?;
                return Some(&e[..byte]);
            }
        }
    }
    None
}

/// Splits at top-level `+ - * / %` (binary positions only); `None` when
/// the expression has no top-level arithmetic.
fn split_top_level_arith(e: &str) -> Option<Vec<&str>> {
    let chars: Vec<char> = e.chars().collect();
    let mut depth = 0i32;
    let mut cuts = Vec::new();
    for j in 0..chars.len() {
        let c = chars[j];
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '+' | '-' | '*' | '/' | '%' if depth == 0 => {
                if c == '-' && chars.get(j + 1) == Some(&'>') {
                    continue;
                }
                if c == '-'
                    && j >= 2
                    && (chars[j - 1] == 'e' || chars[j - 1] == 'E')
                    && chars[j - 2].is_ascii_digit()
                {
                    continue; // exponent sign
                }
                let Some(p) = prev_non_space(&chars, j) else {
                    continue; // leading unary
                };
                if is_ident_char(chars[p]) || chars[p] == ')' || chars[p] == ']' {
                    cuts.push(j);
                }
            }
            _ => {}
        }
    }
    if cuts.is_empty() {
        return None;
    }
    let mut parts = Vec::new();
    let byte_of = |ci: usize| -> usize { e.char_indices().nth(ci).map_or(e.len(), |(b, _)| b) };
    let mut from = 0usize;
    for &cut in &cuts {
        parts.push(e[from..byte_of(cut)].trim());
        from = byte_of(cut + 1);
    }
    parts.push(e[from..].trim());
    Some(parts)
}

/// The identifier starting at/after char index `from`.
fn ident_after(chars: &[char], from: usize) -> Option<String> {
    let mut j = from;
    while j < chars.len() && chars[j] == ' ' {
        j += 1;
    }
    let start = j;
    while j < chars.len() && is_ident_char(chars[j]) {
        j += 1;
    }
    (j > start && !chars[start].is_ascii_digit()).then(|| chars[start..j].iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::STRICT;
    use crate::scanner::scan;

    fn run(src: &str) -> Vec<Candidate> {
        let f = scan("t.rs", src);
        let m = crate::model::build(&f);
        candidates(&f, &m, &STRICT, None)
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        run(src).iter().map(|c| c.rule.id()).collect()
    }

    #[test]
    fn narrowing_cast_on_typed_local_is_flagged() {
        let src = "fn f(ns: u64) -> u32 {\n    ns as u32\n}\n";
        assert_eq!(rules_of(src), vec!["lossy-cast"]);
    }

    #[test]
    fn widening_casts_are_silent() {
        for src in [
            "fn f(n: u32) -> u64 { n as u64 }\n",
            "fn f(n: u32) -> usize { n as usize }\n",
            "fn f(n: usize) -> u64 { n as u64 }\n",
            "fn f(n: u16) -> i32 { n as i32 }\n",
        ] {
            assert!(rules_of(src).is_empty(), "{src}");
        }
    }

    #[test]
    fn float_trunc_and_unknown_int_targets_flagged() {
        let src = "fn f(x: f64) -> u64 { x as u64 }\n";
        assert_eq!(rules_of(src), vec!["lossy-cast"]);
        let src = "fn f() -> u32 { mystery() as u32 }\n";
        assert_eq!(rules_of(src), vec!["lossy-cast"]);
        // Unknown into float is accepted (reporting domain).
        let src = "fn f() -> f64 { mystery() as f64 }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn cast_chains_use_the_inner_result() {
        let src = "fn f(x: u64) -> u64 { x as u32 as u64 }\n";
        // One finding for the u64→u32 leg, none for u32→u64.
        assert_eq!(rules_of(src), vec!["lossy-cast"]);
    }

    #[test]
    fn parenthesized_operands_infer_through_arithmetic() {
        let src = "fn f(ns: u64, k: f64) -> u64 { (ns as f64 * k) as u64 }\n";
        // The outer f64→u64 truncation is the only finding.
        let c = run(src);
        assert_eq!(c.len(), 1, "{c:?}");
        assert!(c[0].message.contains("truncates toward zero"), "{c:?}");
    }

    #[test]
    fn method_table_covers_len_and_as_nanos() {
        let src = "fn f(v: &[u64]) -> u32 { v.len() as u32 }\n";
        assert_eq!(rules_of(src), vec!["lossy-cast"]);
        let src = "fn f(t: SimTime) -> u64 { t.as_nanos() as u64 }\n";
        assert!(rules_of(src).is_empty(), "u64→u64 identity");
        let src = "fn g(t: SimTime) -> u32 { t.as_nanos() as u32 }\n";
        assert_eq!(rules_of(src), vec!["lossy-cast"]);
    }

    #[test]
    fn literal_operands_are_exempt() {
        for src in [
            "fn f() -> u8 { 255 as u8 }\n",
            "fn f() -> u64 { 0xFFFF_FFFF as u64 }\n",
        ] {
            assert!(rules_of(src).is_empty(), "{src}");
        }
        assert_eq!(
            rules_of("fn f() -> u32 { 2.5 as u32 }\n"),
            vec!["lossy-cast"]
        );
    }

    #[test]
    fn computed_index_is_panic_surface() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] }\n";
        assert_eq!(rules_of(src), vec!["panic-surface"]);
        // Literal index and array type positions are exempt.
        assert!(rules_of("fn f(v: &[u8; 4]) -> u8 { v[0] }\n").is_empty());
        assert!(rules_of("fn f() { let _x: [u8; 4] = [0; 4]; }\n").is_empty());
    }

    #[test]
    fn slice_ranges_with_computed_bounds_flagged() {
        let src = "fn f(v: &[u8], p: usize) -> &[u8] { &v[p..p + 4] }\n";
        let c = run(src);
        assert!(c.iter().any(|c| c.rule == Rule::PanicSurface), "{c:?}");
    }

    #[test]
    fn division_by_non_literal_int_flagged() {
        let src = "fn f(a: u64, b: u64) -> u64 { a / b }\n";
        assert_eq!(rules_of(src), vec!["panic-surface"]);
        assert!(rules_of("fn f(a: u64) -> u64 { a / 2 }\n").is_empty());
        assert!(rules_of("fn f(a: f64, b: f64) -> f64 { a / b }\n").is_empty());
        // Both operands unknown: precision over recall.
        assert!(rules_of("fn f() -> X { foo() / bar() }\n").is_empty());
    }

    #[test]
    fn unsigned_subtraction_flagged_signed_ignored() {
        let src = "fn f(a: u64, b: u64) -> u64 { a - b }\n";
        assert_eq!(rules_of(src), vec!["panic-surface"]);
        assert!(rules_of("fn f(a: i64, b: i64) -> i64 { a - b }\n").is_empty());
        assert!(rules_of("fn f(a: f64, b: f64) -> f64 { a - b }\n").is_empty());
        assert!(
            rules_of("fn f(a: u64) -> i64 { -foo(a) }\n").is_empty(),
            "unary"
        );
        assert!(rules_of("fn f() -> f64 { 1e-9 }\n").is_empty(), "exponent");
    }

    #[test]
    fn saturating_forms_are_clean() {
        for src in [
            "fn f(a: u64, b: u64) -> u64 { a.saturating_sub(b) }\n",
            "fn f(a: u64, b: u64) -> Option<u64> { a.checked_div(b) }\n",
        ] {
            assert!(rules_of(src).is_empty(), "{src}");
        }
    }

    #[test]
    fn hot_alloc_fires_only_inside_regions() {
        let src = "fn f() {\n\
                   let a = Vec::new();\n\
                   // tg-lint: hot(loop)\n\
                   let b = Vec::new();\n\
                   let s = format!(\"x\");\n\
                   // tg-lint: endhot\n\
                   let c = Vec::new();\n\
                   }\n";
        let c = run(src);
        let hot: Vec<u32> = c
            .iter()
            .filter(|c| c.rule == Rule::HotAlloc)
            .map(|c| c.line)
            .collect();
        assert_eq!(hot, vec![4, 5], "{c:?}");
    }

    #[test]
    fn doc_drift_wants_units_on_time_params() {
        let src = "/// Sets the lease duration.\n\
                   pub fn set_ttl(ttl_ms: u64) {}\n";
        assert_eq!(rules_of(src), vec!["pub-doc-drift"]);
        let good = "/// Sets the lease duration in virtual ms.\n\
                    pub fn set_ttl(ttl_ms: u64) {}\n";
        assert!(rules_of(good).is_empty());
        // Non-time numerics and non-pub fns are exempt.
        assert!(rules_of("/// Count.\npub fn set_count(items: u64) {}\n").is_empty());
        assert!(rules_of("fn set_ttl(ttl_ms: u64) {}\n").is_empty());
    }

    #[test]
    fn doc_drift_respects_reachability() {
        let src = "/// Doc.\npub fn lease_ttl(ttl_ms: u64) {}\n";
        let f = scan("t.rs", src);
        let m = crate::model::build(&f);
        let mut used = BTreeSet::new();
        assert!(candidates(&f, &m, &STRICT, Some(&used)).is_empty());
        used.insert("lease_ttl".to_string());
        assert_eq!(candidates(&f, &m, &STRICT, Some(&used)).len(), 1);
    }

    #[test]
    fn simduration_params_are_time_typed() {
        let src = "/// Waits a bit.\npub fn wait(d: SimDuration) {}\n";
        assert_eq!(rules_of(src), vec!["pub-doc-drift"]);
    }
}

//! Diagnostic type and human-readable rendering.

use crate::rules::Rule;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the match.
    pub column: u32,
    /// The offending line (masked, trimmed) for context.
    pub snippet: String,
    /// Why this is a violation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic; trims the snippet to keep output compact.
    pub fn new(
        rule: Rule,
        file: &str,
        line: u32,
        column: u32,
        snippet: &str,
        message: &str,
    ) -> Self {
        const MAX_SNIPPET: usize = 120;
        let mut snippet = snippet.trim().to_string();
        if snippet.len() > MAX_SNIPPET {
            let mut cut = MAX_SNIPPET;
            while !snippet.is_char_boundary(cut) {
                cut -= 1;
            }
            snippet.truncate(cut);
            snippet.push_str("...");
        }
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            column,
            snippet,
            message: message.to_string(),
        }
    }

    /// `file:line:col: rule: message` — the human (non-`--json`) format.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.file,
            self.line,
            self.column,
            self.rule.id(),
            self.message
        )
    }

    /// Stable sort key so output order never depends on walk order.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.file.clone(), self.line, self.column, self.rule.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_grep_friendly() {
        let d = Diagnostic::new(Rule::WallClock, "crates/x/src/a.rs", 3, 7, "code", "msg");
        assert_eq!(d.render(), "crates/x/src/a.rs:3:7: wall-clock: msg");
    }

    #[test]
    fn long_snippets_truncate_cleanly() {
        let long = "x".repeat(300);
        let d = Diagnostic::new(Rule::TodoMarker, "f.rs", 1, 1, &long, "m");
        assert!(d.snippet.len() <= 123);
        assert!(d.snippet.ends_with("..."));
    }
}

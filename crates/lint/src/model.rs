//! Pass 1 of the semantic analyzer: a lightweight per-file model.
//!
//! Built on top of the masked lines from [`crate::scanner`], the model
//! records just enough structure for the semantic rules in
//! [`crate::semantic`] to reason cross-line and cross-file without a real
//! parser:
//!
//! - every `fn` item: name, visibility, signature line, body line range,
//!   parameter names/types, attached doc comment text,
//! - `let name: T`, `const NAME: T`, and struct/enum field `name: T`
//!   ascriptions (the local type environment for cast classification),
//! - `// tg-lint: hot(<label>)` … `// tg-lint: endhot` region markers on
//!   the event-loop code the `hot-alloc` rule polices,
//! - the set of identifiers the file mentions (the cross-file usage index
//!   behind `pub-doc-drift`).
//!
//! The model is deliberately approximate: unknown stays unknown, and the
//! rules treat unknown conservatively per their own documented policy.

use std::collections::{BTreeMap, BTreeSet};

use crate::scanner::{find_words, ScannedFile};

/// One `fn` parameter with a visible type ascription.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (patterns more complex than `[mut] name` are skipped).
    pub name: String,
    /// The type text, whitespace-collapsed (e.g. `u64`, `&[u32]`,
    /// `SimDuration`).
    pub ty: String,
}

/// One `fn` item (free function, method, or trait default).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// True only for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub sig_line: u32,
    /// Inclusive body line range; for bodyless trait signatures both
    /// bounds equal `sig_line`.
    pub body: (u32, u32),
    /// Parameters with visible type ascriptions, in order.
    pub params: Vec<Param>,
    /// Concatenated doc-comment text attached above the item (empty when
    /// undocumented).
    pub doc: String,
    /// True when the item sits in test-only code.
    pub in_test: bool,
}

/// A `let name: T` binding site.
#[derive(Debug, Clone)]
pub struct LetBind {
    /// 1-based line of the `let`.
    pub line: u32,
    /// Binding name.
    pub name: String,
    /// Ascribed type text.
    pub ty: String,
}

/// A `// tg-lint: hot(<label>)` … `// tg-lint: endhot` region.
#[derive(Debug, Clone)]
pub struct HotRegion {
    /// First line inside the region (the line after the opening marker).
    pub start: u32,
    /// Last line inside the region (the line before the closing marker).
    pub end: u32,
    /// The label given in `hot(<label>)`.
    pub label: String,
}

/// The per-file model produced by pass 1.
#[derive(Debug, Default)]
pub struct FileModel {
    /// All `fn` items, in source order.
    pub fns: Vec<FnInfo>,
    /// All `let name: T` ascriptions, in source order.
    pub lets: Vec<LetBind>,
    /// `const`/`static` name → type text.
    pub consts: BTreeMap<String, String>,
    /// Struct/enum field name → type text; `None` when two fields of the
    /// same name disagree (lookup then abstains).
    pub fields: BTreeMap<String, Option<String>>,
    /// Hot regions, in source order.
    pub hot_regions: Vec<HotRegion>,
    /// Every identifier token in the file's masked code.
    pub idents: BTreeSet<String>,
    /// Identifiers bound as `for <var> in <range>` loop variables
    /// anywhere in the file. Indexing by such a variable is exempt from
    /// `panic-surface`: the bound is visible at the loop header.
    pub range_loop_vars: BTreeSet<String>,
    /// Marker-syntax errors (unclosed/unopened/bad hot markers), as
    /// `(line, message)`; surfaced via `malformed-allow`.
    pub marker_errors: Vec<(u32, String)>,
}

impl FileModel {
    /// True when `line` is inside a hot region.
    pub fn in_hot_region(&self, line: u32) -> Option<&HotRegion> {
        self.hot_regions
            .iter()
            .find(|r| r.start <= line && line <= r.end)
    }

    /// The innermost `fn` whose body contains `line`.
    pub fn enclosing_fn(&self, line: u32) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= line && line <= f.body.1)
            .max_by_key(|f| f.body.0)
    }

    /// Resolves the type text of `name` as seen from `line`: the latest
    /// preceding `let` in the enclosing fn, else a parameter, else a
    /// const/static, else a same-file field (for `self.name` receivers the
    /// caller strips the `self.` prefix first).
    pub fn lookup_type(&self, name: &str, line: u32) -> Option<&str> {
        if let Some(f) = self.enclosing_fn(line) {
            if let Some(l) = self
                .lets
                .iter()
                .rfind(|l| l.name == name && l.line <= line && l.line >= f.body.0)
            {
                return Some(&l.ty);
            }
            if let Some(p) = f.params.iter().find(|p| p.name == name) {
                return Some(&p.ty);
            }
        }
        if let Some(ty) = self.consts.get(name) {
            return Some(ty);
        }
        None
    }

    /// Resolves the type text of a field by name (same-file structs only).
    pub fn lookup_field(&self, name: &str) -> Option<&str> {
        self.fields.get(name).and_then(|t| t.as_deref())
    }
}

/// True when a directive's text is a hot-region marker (`hot(<label>)`,
/// bare `hot`, or `endhot`) rather than an `allow` — the rule engine skips
/// these in its allow parser because this module consumes them.
pub fn is_hot_marker(text: &str) -> bool {
    let t = text.trim();
    if t == "endhot" {
        return true;
    }
    match t.strip_prefix("hot") {
        Some(rest) => rest.trim().is_empty() || rest.trim_start().starts_with('('),
        None => false,
    }
}

/// Builds the model for one scanned file.
pub fn build(file: &ScannedFile) -> FileModel {
    let mut m = FileModel::default();
    collect_idents(file, &mut m);
    collect_hot_regions(file, &mut m);
    collect_items(file, &mut m);
    m
}

fn collect_idents(file: &ScannedFile, m: &mut FileModel) {
    for line in &file.lines {
        let mut word = String::new();
        for c in line.code.chars() {
            if c.is_alphanumeric() || c == '_' {
                word.push(c);
            } else if !word.is_empty() {
                if !word.chars().next().is_some_and(|f| f.is_ascii_digit()) {
                    m.idents.insert(std::mem::take(&mut word));
                } else {
                    word.clear();
                }
            }
        }
        if !word.is_empty() && !word.chars().next().is_some_and(|f| f.is_ascii_digit()) {
            m.idents.insert(word);
        }
    }
}

fn collect_hot_regions(file: &ScannedFile, m: &mut FileModel) {
    let mut open: Option<(u32, String)> = None;
    for d in &file.directives {
        let text = d.text.trim();
        if let Some(rest) = text.strip_prefix("hot") {
            let rest = rest.trim();
            if text.starts_with("hotfix") || !(rest.is_empty() || rest.starts_with('(')) {
                continue; // not a hot marker; directive hygiene handles it
            }
            let label = rest
                .strip_prefix('(')
                .and_then(|r| r.strip_suffix(')'))
                .map_or("", str::trim);
            if label.is_empty() {
                m.marker_errors.push((
                    d.line,
                    "hot marker needs a label: `// tg-lint: hot(<region-name>)`".to_string(),
                ));
                continue;
            }
            if let Some((line, _)) = &open {
                m.marker_errors.push((
                    d.line,
                    format!("hot region opened on line {line} is still open; close it with `// tg-lint: endhot`"),
                ));
                continue;
            }
            open = Some((d.line, label.to_string()));
        } else if text == "endhot" {
            match open.take() {
                Some((line, label)) => m.hot_regions.push(HotRegion {
                    start: line + 1,
                    end: d.line.saturating_sub(1),
                    label,
                }),
                None => m.marker_errors.push((
                    d.line,
                    "endhot without a matching `// tg-lint: hot(<label>)`".to_string(),
                )),
            }
        }
    }
    if let Some((line, label)) = open {
        m.marker_errors.push((
            line,
            format!("hot region `{label}` is never closed with `// tg-lint: endhot`"),
        ));
    }
}

/// Single walk over the masked lines: tracks brace depth, recognizes
/// `fn`/`struct`/`enum`/`const`/`static`/`let` items, and assigns body
/// ranges by depth bookkeeping.
fn collect_items(file: &ScannedFile, m: &mut FileModel) {
    let mut depth: i32 = 0;
    // Open fn bodies: (depth before `{`, index into m.fns).
    let mut open_fns: Vec<(i32, usize)> = Vec::new();
    // Open struct/enum bodies: depth before `{`.
    let mut open_types: Vec<i32> = Vec::new();
    // A signature seen on an earlier line, waiting for its `{` or `;`.
    let mut pending_fn: Option<(usize, String)> = None;

    for line in &file.lines {
        let code = &line.code;

        if let Some((idx, sig)) = pending_fn.take() {
            let mut sig = sig;
            sig.push(' ');
            sig.push_str(code);
            match sig_terminator(&sig) {
                Some(true) => {
                    // The `{` of this fn is on the current line; the depth
                    // bookkeeping below sees it and needs the fn open.
                    finish_signature(&sig, idx, m);
                    open_fns.push((depth, idx));
                }
                Some(false) => {
                    finish_signature(&sig, idx, m);
                    m.fns[idx].body = (m.fns[idx].sig_line, m.fns[idx].sig_line);
                }
                None => pending_fn = Some((idx, sig)),
            }
        } else if let Some(pos) = find_words(code, "fn").next() {
            if let Some(name) = ident_after(code, pos + 2) {
                let idx = m.fns.len();
                m.fns.push(FnInfo {
                    name,
                    is_pub: is_bare_pub(&code[..pos]),
                    sig_line: line.number,
                    body: (line.number, line.number),
                    params: Vec::new(),
                    doc: doc_text_above(file, line.number),
                    in_test: line.in_test,
                });
                let sig = code.clone();
                match sig_terminator(&sig) {
                    Some(true) => {
                        finish_signature(&sig, idx, m);
                        open_fns.push((depth, idx));
                    }
                    Some(false) => {
                        finish_signature(&sig, idx, m);
                        m.fns[idx].body = (line.number, line.number);
                    }
                    None => pending_fn = Some((idx, sig)),
                }
            }
        }

        if find_words(code, "struct").next().is_some()
            || find_words(code, "enum").next().is_some()
            || find_words(code, "union").next().is_some()
        {
            if code.contains('{') {
                open_types.push(depth);
            } else if !code.contains(';') {
                // `struct X {` with the brace on the next line: treat the
                // following block as a type body too.
                open_types.push(depth);
            }
        }

        collect_let_const(code, line.number, m);
        collect_range_loop_vars(code, m);
        if open_types.last().is_some_and(|&d| depth > d) || line_opens_type_body(code) {
            collect_field(code, m);
        }

        // Depth bookkeeping, closing fn/type bodies as braces unwind.
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    while open_fns.last().is_some_and(|&(d, _)| d >= depth) {
                        let (_, idx) = open_fns.pop().unwrap_or((0, 0));
                        m.fns[idx].body.1 = line.number;
                    }
                    while open_types.last().is_some_and(|&d| d >= depth) {
                        open_types.pop();
                    }
                }
                _ => {}
            }
        }
    }
    // Unterminated bodies (truncated file): close at EOF.
    let last = file.lines.last().map_or(1, |l| l.number);
    for (_, idx) in open_fns {
        m.fns[idx].body.1 = last;
    }
}

/// True when the line itself opens a struct/enum body whose fields start
/// on the same line (`struct P { x: u32 }`).
fn line_opens_type_body(code: &str) -> bool {
    (find_words(code, "struct").next().is_some() || find_words(code, "enum").next().is_some())
        && code.contains('{')
}

/// `Some(true)` when the accumulated signature reaches its body `{`,
/// `Some(false)` at a bodyless `;`, `None` while still incomplete.
fn sig_terminator(sig: &str) -> Option<bool> {
    let mut paren = 0i32;
    let mut angle = 0i32;
    let chars: Vec<char> = sig.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        match chars[i] {
            '(' | '[' => paren += 1,
            ')' | ']' => paren -= 1,
            '<' => angle += 1,
            '>' => {
                if i > 0 && chars[i - 1] == '-' {
                    // `->` return arrow, not a generic close.
                } else {
                    angle -= 1;
                }
            }
            '{' if paren == 0 && angle <= 0 => return Some(true),
            ';' if paren == 0 && angle <= 0 => return Some(false),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses the parameter list out of a completed signature string.
fn finish_signature(sig: &str, idx: usize, m: &mut FileModel) {
    let chars: Vec<char> = sig.chars().collect();
    // Find the param-list `(`: the first `(` at angle-depth 0 after `fn`.
    let fn_pos = find_words(sig, "fn").next().unwrap_or(0);
    let mut angle = 0i32;
    let mut start = None;
    let mut i = fn_pos;
    while i < chars.len() {
        match chars[i] {
            '<' => angle += 1,
            '>' => {
                if i > 0 && chars[i - 1] == '-' {
                } else {
                    angle -= 1;
                }
            }
            '(' if angle <= 0 => {
                start = Some(i);
                break;
            }
            _ => {}
        }
        i += 1;
    }
    let Some(start) = start else { return };
    // Matching close paren.
    let mut depth = 0i32;
    let mut end = None;
    for (j, &c) in chars.iter().enumerate().skip(start) {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(j);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(end) = end else { return };
    let params_text: String = chars[start + 1..end].iter().collect();
    m.fns[idx].params = parse_params(&params_text);
}

/// Splits a param list at top-level commas and keeps `name: Type` pairs.
fn parse_params(text: &str) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    let mut parts = Vec::new();
    for c in text.chars() {
        match c {
            '(' | '[' | '<' => depth += 1,
            ')' | ']' | '>' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    for part in parts {
        let part = part.trim();
        let Some((name_part, ty_part)) = split_top_level_colon(part) else {
            continue; // `self`, `&mut self`, or a weird pattern
        };
        let name = name_part.trim().trim_start_matches("mut ").trim();
        if name.is_empty()
            || !name.chars().all(|c| c.is_alphanumeric() || c == '_')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            continue; // tuple/struct patterns — no single binding to type
        }
        params.push(Param {
            name: name.to_string(),
            ty: collapse_ws(ty_part.trim()),
        });
    }
    params
}

/// Splits `name: Type` at the first top-level single colon (ignores `::`).
fn split_top_level_colon(part: &str) -> Option<(&str, &str)> {
    let bytes: Vec<char> = part.chars().collect();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            '(' | '[' | '<' => depth += 1,
            ')' | ']' | '>' => depth -= 1,
            ':' if depth == 0 => {
                if bytes.get(i + 1) == Some(&':') {
                    i += 2;
                    continue;
                }
                let split = part.char_indices().nth(i).map(|(b, _)| b)?;
                return Some((&part[..split], &part[split + 1..]));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn collapse_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = false;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space && !out.is_empty() {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out.trim_end().to_string()
}

/// Collects `let name: T`, `const NAME: T`, `static NAME: T` on one line.
fn collect_let_const(code: &str, line: u32, m: &mut FileModel) {
    for pos in find_words(code, "let") {
        if let Some((name, ty)) = binding_after(code, pos + 3) {
            m.lets.push(LetBind { line, name, ty });
        }
    }
    for kw in ["const", "static"] {
        for pos in find_words(code, kw) {
            if let Some((name, ty)) = binding_after(code, pos + kw.len()) {
                m.consts.insert(name, ty);
            }
        }
    }
}

/// Parses `[mut ]name: Type` starting after a keyword; the type ends at a
/// top-level `=`, `;`, or end of line.
fn binding_after(code: &str, from: usize) -> Option<(String, String)> {
    let rest = code.get(from..)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name_end = rest
        .char_indices()
        .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
        .map_or(rest.len(), |(i, _)| i);
    if name_end == 0 {
        return None;
    }
    let name = &rest[..name_end];
    if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    let after = rest[name_end..].trim_start();
    let after = after.strip_prefix(':')?;
    if after.starts_with(':') {
        return None; // `::` path, not an ascription
    }
    let mut depth = 0i32;
    let mut ty = String::new();
    for c in after.chars() {
        match c {
            '(' | '[' | '<' => depth += 1,
            ')' | ']' | '>' => depth -= 1,
            '=' | ';' if depth == 0 => break,
            _ => {}
        }
        ty.push(c);
    }
    let ty = collapse_ws(ty.trim());
    (!ty.is_empty()).then(|| (name.to_string(), ty))
}

/// Collects `for <var> in <range>` loop variables: `for i in 0..n` makes
/// `i` a range-derived index whose bound is stated at the loop header.
fn collect_range_loop_vars(code: &str, m: &mut FileModel) {
    for pos in find_words(code, "for") {
        let Some(var) = ident_after(code, pos + 3) else {
            continue;
        };
        let after_var = &code[pos + 3..];
        let Some(in_pos) = find_words(after_var, "in").next() else {
            continue;
        };
        if after_var[in_pos..].contains("..") {
            m.range_loop_vars.insert(var);
        }
    }
}

/// Collects a `name: Type,` field line inside a struct/enum body.
fn collect_field(code: &str, m: &mut FileModel) {
    let t = code.trim();
    let t = t.strip_prefix("pub ").unwrap_or(t);
    let t = t
        .strip_prefix("pub(crate) ")
        .or_else(|| t.strip_prefix("pub(super) "))
        .unwrap_or(t);
    let Some((name, ty)) = split_top_level_colon(t) else {
        return;
    };
    let name = name.trim();
    if name.is_empty()
        || !name.chars().all(|c| c.is_alphanumeric() || c == '_')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return;
    }
    let ty = collapse_ws(ty.trim().trim_end_matches(',').trim());
    if ty.is_empty() || ty.contains('{') {
        return;
    }
    match m.fields.get(name) {
        None => {
            m.fields.insert(name.to_string(), Some(ty));
        }
        Some(Some(existing)) if *existing != ty => {
            m.fields.insert(name.to_string(), None);
        }
        _ => {}
    }
}

/// The identifier starting at/after `from` (skipping whitespace).
fn ident_after(code: &str, from: usize) -> Option<String> {
    let rest = code.get(from..)?.trim_start();
    let end = rest
        .char_indices()
        .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
        .map_or(rest.len(), |(i, _)| i);
    (end > 0 && !rest[..1].chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then(|| rest[..end].to_string())
}

/// True when the text before `fn` carries a bare `pub` (not `pub(...)`).
fn is_bare_pub(before: &str) -> bool {
    for pos in find_words(before, "pub") {
        let after = before[pos + 3..].trim_start();
        if !after.starts_with('(') {
            return true;
        }
    }
    false
}

/// Concatenated doc text of the `///` run directly above `line`
/// (attribute lines between docs and the item are skipped).
fn doc_text_above(file: &ScannedFile, line: u32) -> String {
    let mut docs: Vec<&str> = Vec::new();
    let mut expect = line.saturating_sub(1);
    while expect >= 1 {
        let idx = (expect - 1) as usize;
        let code_blank = file
            .lines
            .get(idx)
            .is_some_and(|l| l.code.trim().is_empty() || l.code.trim_start().starts_with("#["));
        let comment = file
            .comments
            .iter()
            .rev()
            .find(|c| c.line == expect && !c.has_code_before);
        match comment {
            Some(c) if c.text.starts_with('/') => {
                docs.push(c.text.trim_start_matches('/').trim());
                expect -= 1;
            }
            // Control comments (`// tg-lint: hot(...)` region markers or
            // allows) may sit between an item and its docs: keep walking.
            Some(c) if c.text.trim_start().starts_with("tg-lint:") => {
                expect -= 1;
            }
            Some(_) => break, // plain comment ends the doc run
            None if code_blank
                && file
                    .lines
                    .get(idx)
                    .is_some_and(|l| l.code.trim_start().starts_with("#[")) =>
            {
                // Attribute line between docs and item: keep walking.
                expect -= 1;
            }
            None => break,
        }
    }
    docs.reverse();
    docs.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn model_of(src: &str) -> FileModel {
        build(&scan("t.rs", src))
    }

    #[test]
    fn fn_signature_and_body_range() {
        let m = model_of(
            "/// Waits `delay_ms` milliseconds.\n\
             pub fn wait(delay_ms: u64, label: &str) -> u64 {\n\
                 let scaled: u64 = delay_ms * 2;\n\
                 scaled\n\
             }\n",
        );
        assert_eq!(m.fns.len(), 1);
        let f = &m.fns[0];
        assert_eq!(f.name, "wait");
        assert!(f.is_pub);
        assert_eq!(f.body, (2, 5));
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "delay_ms");
        assert_eq!(f.params[0].ty, "u64");
        assert!(f.doc.contains("milliseconds"));
        assert_eq!(m.lookup_type("scaled", 4), Some("u64"));
        assert_eq!(m.lookup_type("delay_ms", 3), Some("u64"));
    }

    #[test]
    fn pub_crate_is_not_externally_pub() {
        let m = model_of("pub(crate) fn helper(x: u32) {}\nfn private() {}\n");
        assert!(!m.fns[0].is_pub);
        assert!(!m.fns[1].is_pub);
    }

    #[test]
    fn multiline_signatures_parse() {
        let m = model_of("fn multi(\n    a: u64,\n    b: SimDuration,\n) -> bool {\n    true\n}\n");
        assert_eq!(m.fns[0].params.len(), 2);
        assert_eq!(m.fns[0].params[1].ty, "SimDuration");
        assert_eq!(m.fns[0].body.1, 6);
    }

    #[test]
    fn generic_fn_bounds_do_not_confuse_params() {
        let m = model_of("fn apply<F: Fn(u32) -> u64>(seed: u64, f: F) -> u64 { f(0) }\n");
        assert_eq!(m.fns[0].params.len(), 2);
        assert_eq!(m.fns[0].params[0].name, "seed");
        assert_eq!(m.fns[0].params[0].ty, "u64");
    }

    #[test]
    fn struct_fields_and_consts_are_collected() {
        let m = model_of(
            "const LIMIT: u32 = 7;\n\
             struct S {\n    pub count: u64,\n    ratio: f64,\n}\n",
        );
        assert_eq!(m.consts.get("LIMIT").map(String::as_str), Some("u32"));
        assert_eq!(m.lookup_field("count"), Some("u64"));
        assert_eq!(m.lookup_field("ratio"), Some("f64"));
    }

    #[test]
    fn conflicting_field_types_abstain() {
        let m = model_of("struct A { n: u64 }\nstruct B { n: u32 }\n");
        assert_eq!(m.lookup_field("n"), None);
    }

    #[test]
    fn hot_regions_parse_and_validate() {
        let m = model_of(
            "fn f() {\n\
             // tg-lint: hot(event-loop)\n\
             let x = 1;\n\
             // tg-lint: endhot\n\
             }\n",
        );
        assert_eq!(m.hot_regions.len(), 1);
        assert_eq!(m.hot_regions[0].label, "event-loop");
        assert!(m.in_hot_region(3).is_some());
        assert!(m.in_hot_region(5).is_none());
        assert!(m.marker_errors.is_empty());

        let bad = model_of("// tg-lint: hot(x)\nfn f() {}\n");
        assert_eq!(bad.marker_errors.len(), 1, "{:?}", bad.marker_errors);
        let orphan = model_of("// tg-lint: endhot\nfn f() {}\n");
        assert_eq!(orphan.marker_errors.len(), 1);
    }

    #[test]
    fn idents_index_tracks_usage() {
        let m = model_of("fn caller() { remote_helper(3); }\n");
        assert!(m.idents.contains("remote_helper"));
        assert!(!m.idents.contains("3"));
    }

    #[test]
    fn nested_fns_resolve_innermost() {
        let m = model_of(
            "fn outer(a: u64) {\n    fn inner(a: u32) {\n        let _ = a;\n    }\n    let _ = a;\n}\n",
        );
        assert_eq!(m.lookup_type("a", 3), Some("u32"));
        assert_eq!(m.lookup_type("a", 5), Some("u64"));
    }
}

//! End-to-end CLI contract: exit codes and output modes of the built
//! `tailguard-lint` binary (0 clean, 1 violations, 2 usage error).

use std::process::Command;

fn lint() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tailguard-lint"));
    // Integration tests run with CWD = crates/lint; the corpus is local.
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

#[test]
fn clean_corpus_exits_zero() {
    let out = lint()
        .args(["--paths", "fixtures/allowed"])
        .output()
        .expect("run tailguard-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn violations_exit_one_and_render_grepable_lines() {
    let out = lint()
        .args(["--paths", "fixtures/bad"])
        .output()
        .expect("run tailguard-lint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("fixtures/bad/wall_clock.rs:4:"), "{stdout}");
    assert!(stdout.contains("wall-clock:"), "{stdout}");
}

#[test]
fn json_mode_emits_the_machine_report() {
    let out = lint()
        .args(["--paths", "fixtures/bad", "--json"])
        .output()
        .expect("run tailguard-lint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("{\n"), "{stdout}");
    assert!(stdout.contains("\"ok\": false"), "{stdout}");
}

#[test]
fn unknown_flag_exits_two() {
    let out = lint().arg("--bogus").output().expect("run tailguard-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn list_rules_names_the_whole_catalog() {
    let out = lint()
        .arg("--list-rules")
        .output()
        .expect("run tailguard-lint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for id in [
        "wall-clock",
        "os-entropy",
        "hash-order",
        "unwrap-in-lib",
        "float-eq",
        "todo-marker",
        "malformed-allow",
    ] {
        assert!(stdout.contains(id), "missing rule `{id}` in:\n{stdout}");
    }
}

//! Fixture: wall-clock time in deterministic code (must flag twice).

fn elapsed_ms() -> u64 {
    let start = std::time::Instant::now();
    let _stamp = std::time::SystemTime::now();
    start.elapsed().as_millis() as u64
}

//! Fixture: OS entropy in deterministic code (must flag three times).

fn seeds() -> u64 {
    let _rng = rand::thread_rng();
    let _small = SmallRng::from_entropy();
    let _state = std::collections::hash_map::RandomState::new();
    0
}

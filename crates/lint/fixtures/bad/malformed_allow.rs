//! Fixture: broken allow directives (three malformed-allow flags, and the
//! unjustified allow must NOT suppress the violation under it).

// tg-lint: allow(hash-order)
type Unjustified = std::collections::HashMap<u32, u32>;

// tg-lint: allow(no-such-rule) -- the rule name does not exist
fn unknown_rule() {}

// tg-lint: allow(wall-clock) -- stale: nothing on the next line matches
fn stale() {}

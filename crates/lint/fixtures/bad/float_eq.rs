//! Fixture: exact float comparisons (two flags).

fn same(a: f64, b: f64) -> bool {
    a == 1.0 || b != 0.0
}

//! Fixture: incomplete-code markers in shipped code (two flags).

fn later() {
    todo!()
}

fn never() {
    unimplemented!()
}

//! Fixture: an allocation inside a declared hot region (one flag).

// tg-lint: hot(encode)
fn encode(v: u64) -> u64 {
    let staged = format!("{v}");
    staged.len() as u64
}
// tg-lint: endhot

//! Fixture: computed indexing, division by a non-literal, and unsigned
//! subtraction (three flags).

fn head(slots: &[u64], i: usize) -> u64 {
    slots[i]
}

fn per_slot(total: u64, slots: u64) -> u64 {
    total / slots
}

fn remaining(budget: u64, spent: u64) -> u64 {
    budget - spent
}

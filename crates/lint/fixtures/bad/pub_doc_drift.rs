//! Fixture: a pub fn with a time-typed param whose doc never states the
//! unit (one flag).

/// Schedules the next probe.
pub fn schedule_probe(at: SimTime) {
    let _ = at;
}

//! Fixture: a narrowing integer cast on a typed value (one flag).

fn narrow(ns: u64) -> u32 {
    ns as u32
}

//! Fixture: hash-ordered collections in deterministic code (two flags).

fn tally(xs: &[u32]) -> (usize, usize) {
    let mut seen = std::collections::HashSet::new();
    let mut counts = std::collections::HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0u32) += 1;
    }
    (seen.len(), counts.len())
}

//! Fixture: panicking shortcuts in library code (three flags).

fn broken(v: Option<u32>) -> u32 {
    let x = v.unwrap();
    let y = Some(1).expect("one");
    if x == 0 {
        panic!("zero");
    }
    x + y
}

//! Fixture: a justified hot-region allocation exemption (must NOT flag).

// tg-lint: hot(setup)
fn warm(cap: usize) -> Vec<u64> {
    // tg-lint: allow(hot-alloc) -- fixture: one-time warm-up allocation, not steady-state
    Vec::with_capacity(cap)
}
// tg-lint: endhot

//! Fixture: a justified todo exemption (must NOT flag).

fn stub() {
    // tg-lint: allow(todo-marker) -- fixture: documented stub pending the next milestone
    todo!()
}

//! Fixture: a justified float-equality exemption (must NOT flag).

fn is_sentinel(p: f64) -> bool {
    // tg-lint: allow(float-eq) -- fixture: 0.0 is an exact sentinel, not a computed value
    p == 0.0
}

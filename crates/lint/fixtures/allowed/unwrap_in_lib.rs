//! Fixture: a justified unwrap exemption, trailing-comment form (must NOT flag).

fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // tg-lint: allow(unwrap-in-lib) -- fixture: caller guarantees xs is non-empty
}

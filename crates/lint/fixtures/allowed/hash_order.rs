//! Fixture: a justified hash-order exemption (must NOT flag).

// tg-lint: allow(hash-order) -- fixture: lookup-only memo, never iterated
type Memo = std::collections::HashMap<u32, u32>;

fn memo() -> Memo {
    Memo::new()
}

//! Fixture: a justified doc-drift exemption (must NOT flag).

/// Cancels the pending probe.
// tg-lint: allow(pub-doc-drift) -- fixture: the unit is documented once on the type's module
pub fn cancel_probe(at: SimTime) {
    let _ = at;
}

//! Fixture: a justified wall-clock exemption (must NOT flag).

fn elapsed_ns() -> u64 {
    // tg-lint: allow(wall-clock) -- fixture: demonstrates a justified wall-clock site
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}

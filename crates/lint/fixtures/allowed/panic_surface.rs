//! Fixture: a justified unsigned-subtraction exemption (must NOT flag).

fn width(lo: u64, hi: u64) -> u64 {
    // tg-lint: allow(panic-surface) -- fixture: caller contract guarantees `hi >= lo`
    hi - lo
}

//! Fixture: a justified narrowing-cast exemption (must NOT flag).

fn low_bits(word: u64) -> u32 {
    // tg-lint: allow(lossy-cast) -- fixture: keeping only the low 32 bits is the point
    word as u32
}

//! Fixture: a justified OS-entropy exemption (must NOT flag).

fn draw() -> u64 {
    // tg-lint: allow(os-entropy) -- fixture: this driver seeds from the OS by design
    let mut rng = rand::thread_rng();
    rng.gen()
}

//! Max-load search and load sweeps — the measurement harness behind
//! Figs. 4–6.
//!
//! The paper reports, per policy, "the maximum load at which all three
//! types of queries meet their tail latency SLOs" (§IV.B). We reproduce
//! that as a bisection over offered load `ρ`: each probe generates the
//! scenario's workload at `ρ`, runs the simulator, and asks
//! [`SimReport::meets_all_slos`].

use crate::cluster::run_simulation;
use crate::report::SimReport;
use crate::spec::Scenario;
use std::collections::BTreeMap;
use tailguard_policy::Policy;
use tailguard_sched::units;
use tailguard_simcore::SimDuration;

/// Tuning knobs for [`max_load`] and [`sweep_loads`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxLoadOptions {
    /// Queries simulated per probe (more = tighter tail estimates; the
    /// paper-scale benches use 300k+, tests use ~20k).
    pub queries: usize,
    /// Lower bracket of the search (load fraction).
    pub lo: f64,
    /// Upper bracket of the search (load fraction).
    pub hi: f64,
    /// Bisection stops when the bracket is narrower than this.
    pub tolerance: f64,
    /// Fraction of queries discarded as warm-up.
    pub warmup_fraction: f64,
}

impl Default for MaxLoadOptions {
    fn default() -> Self {
        MaxLoadOptions {
            queries: 100_000,
            lo: 0.05,
            hi: 0.95,
            tolerance: 0.01,
            warmup_fraction: 0.05,
        }
    }
}

/// One point of a load sweep (Figs. 6, 7, 9).
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// The offered load the scenario was generated at.
    pub load: f64,
    /// Measured tail latency per class, at each class's percentile.
    pub tails_by_class: BTreeMap<u8, SimDuration>,
    /// Whether every query type met its SLO at this load.
    pub meets: bool,
    /// Fraction of tasks that missed their queuing deadline.
    pub miss_ratio: f64,
    /// Measured (accepted) load.
    pub measured_load: f64,
    /// Discrete events processed by this point's simulation run (for
    /// throughput accounting).
    pub events_processed: u64,
    /// Queries that completed (after warm-up trimming and admission
    /// control) in this point's run — the denominator for queries/sec
    /// throughput, distinct from the offered `opts.queries`.
    pub completed_queries: u64,
}

/// Runs the scenario once at offered load `load` under `policy`.
///
/// # Panics
///
/// Panics when `load` is not positive (via the rate computation).
pub fn measure_at_load(
    scenario: &Scenario,
    policy: Policy,
    load: f64,
    opts: &MaxLoadOptions,
) -> SimReport {
    let input = scenario.input(load, opts.queries);
    let warmup = units::trunc_f64_to_usize(opts.queries as f64 * opts.warmup_fraction);
    let config = scenario.config(policy).with_warmup(warmup);
    run_simulation(&config, &input)
}

fn meets(scenario: &Scenario, policy: Policy, load: f64, opts: &MaxLoadOptions) -> bool {
    measure_at_load(scenario, policy, load, opts).meets_all_slos()
}

/// Bisects for the maximum offered load at which every query type meets its
/// SLO. Returns `opts.lo` when even the lower bracket fails, and `opts.hi`
/// when the upper bracket passes.
///
/// # Example
///
/// ```
/// use tailguard::{scenarios, max_load, MaxLoadOptions};
/// use tailguard_policy::Policy;
/// use tailguard_workload::TailbenchWorkload;
///
/// let s = scenarios::single_class(TailbenchWorkload::Masstree, 1.2, 100);
/// let opts = MaxLoadOptions { queries: 15_000, tolerance: 0.05, ..Default::default() };
/// let load = max_load(&s, Policy::TfEdf, &opts);
/// assert!(load > 0.05);
/// ```
pub fn max_load(scenario: &Scenario, policy: Policy, opts: &MaxLoadOptions) -> f64 {
    assert!(
        opts.lo > 0.0 && opts.lo < opts.hi && opts.hi < 1.0,
        "need 0 < lo < hi < 1"
    );
    if meets(scenario, policy, opts.hi, opts) {
        return opts.hi;
    }
    if !meets(scenario, policy, opts.lo, opts) {
        return opts.lo;
    }
    let (mut lo, mut hi) = (opts.lo, opts.hi);
    while hi - lo > opts.tolerance {
        let mid = 0.5 * (lo + hi);
        if meets(scenario, policy, mid, opts) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Measures one sweep point — the unit of work shared by the serial
/// [`sweep_loads`] and the parallel
/// [`sweep_loads_parallel`](crate::sweep_loads_parallel), so the two paths
/// are bit-identical by construction.
pub(crate) fn sweep_point(
    scenario: &Scenario,
    policy: Policy,
    load: f64,
    opts: &MaxLoadOptions,
) -> LoadPoint {
    let mut report = measure_at_load(scenario, policy, load, opts);
    let mut tails = BTreeMap::new();
    for (class, spec) in scenario.classes.iter().enumerate() {
        // tg-lint: allow(lossy-cast) -- class ids are scenario constants, fewer than 256 classes by construction
        tails.insert(class as u8, report.class_tail(class as u8, spec.percentile));
    }
    LoadPoint {
        load,
        tails_by_class: tails,
        meets: report.meets_all_slos(),
        miss_ratio: report.deadline_miss_ratio(),
        measured_load: report.accepted_load(),
        events_processed: report.events_processed,
        completed_queries: report.completed_queries,
    }
}

/// Measures per-class tails at each load in `loads` (the Fig. 6 curves).
pub fn sweep_loads(
    scenario: &Scenario,
    policy: Policy,
    loads: &[f64],
    opts: &MaxLoadOptions,
) -> Vec<LoadPoint> {
    loads
        .iter()
        .map(|&load| sweep_point(scenario, policy, load, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use tailguard_workload::TailbenchWorkload;

    fn quick_opts() -> MaxLoadOptions {
        MaxLoadOptions {
            queries: 15_000,
            tolerance: 0.05,
            ..Default::default()
        }
    }

    #[test]
    fn measured_load_tracks_offered_load() {
        let s = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
        let report = measure_at_load(&s, Policy::Fifo, 0.4, &quick_opts());
        let measured = report.accepted_load();
        assert!(
            (measured - 0.4).abs() < 0.05,
            "offered 0.40, measured {measured:.3}"
        );
    }

    #[test]
    fn low_load_meets_high_load_fails() {
        let s = scenarios::single_class(TailbenchWorkload::Masstree, 0.8, 100);
        let opts = quick_opts();
        let mut low = measure_at_load(&s, Policy::TfEdf, 0.08, &opts);
        assert!(low.meets_all_slos(), "{}", low.render_table());
        let mut high = measure_at_load(&s, Policy::TfEdf, 0.92, &opts);
        assert!(!high.meets_all_slos(), "{}", high.render_table());
    }

    #[test]
    fn bisection_brackets_the_boundary() {
        let s = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
        let opts = quick_opts();
        let load = max_load(&s, Policy::TfEdf, &opts);
        assert!(load > opts.lo && load < opts.hi, "load {load}");
        // The found load must itself pass.
        assert!(meets(&s, Policy::TfEdf, load, &opts));
    }

    #[test]
    fn tailguard_at_least_matches_fifo() {
        // The headline claim, in miniature.
        let s = scenarios::single_class(TailbenchWorkload::Masstree, 0.9, 100);
        let opts = quick_opts();
        let tg = max_load(&s, Policy::TfEdf, &opts);
        let fifo = max_load(&s, Policy::Fifo, &opts);
        assert!(
            tg >= fifo - opts.tolerance,
            "TailGuard {tg:.3} must not lose to FIFO {fifo:.3}"
        );
    }

    #[test]
    fn sweep_monotone_tails() {
        let s = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
        let pts = sweep_loads(&s, Policy::Fifo, &[0.2, 0.5, 0.8], &quick_opts());
        assert_eq!(pts.len(), 3);
        // Tail latency grows with load.
        let t: Vec<f64> = pts
            .iter()
            .map(|p| p.tails_by_class[&0].as_millis_f64())
            .collect();
        assert!(t[0] < t[2], "tails {t:?}");
        assert!(pts[0].meets, "low load point must meet SLO");
    }

    #[test]
    #[should_panic(expected = "need 0 < lo < hi < 1")]
    fn rejects_bad_bracket() {
        let s = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
        let opts = MaxLoadOptions {
            lo: 0.9,
            hi: 0.1,
            ..quick_opts()
        };
        let _ = max_load(&s, Policy::Fifo, &opts);
    }
}

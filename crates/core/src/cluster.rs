//! The discrete-event cluster simulator.
//!
//! A thin driver over the shared scheduling core
//! ([`tailguard_sched::QueryHandler`]), which implements the TailGuard
//! query processing model of Fig. 2: deadline stamping (`t_D = t_0 + T_b`,
//! Eq. 6), per-server policy queues, dequeue-time deadline-miss detection
//! (§III.C), window-based admission, and fanout aggregation. This module
//! owns only what is genuinely simulation: the event heap, the RNG streams
//! that draw placements and service times, failure injection (slowdowns),
//! warm-up accounting, and the sequential request chaining of Fig. 1.

use crate::observe::SimSnapshot;
use crate::report::SimReport;
use crate::spec::{QuerySpec, SimConfig, SimInput};
use std::collections::BTreeMap;
use tailguard_faults::FaultPlan;
use tailguard_metrics::LatencyReservoir;
use tailguard_sched::{
    AdmitDecision, AttemptKind, DeadlineEstimator, DispatchedTask, EstimatorMode, LeaseToken,
    LostTask, QueryArrival, QueryDone, QueryHandler, TraceSink,
};
use tailguard_simcore::{Engine, Scheduler, SimDuration, SimRng, SimTime, Simulation};

/// What [`run_with_observer`] installs when a run is observed: the trace
/// sink the handler will emit lifecycle events into, and the virtual-time
/// cadence for [`SimSnapshot`] sampling (`None` records the trace without
/// injecting any snapshot events — the engine's event count then matches
/// the unobserved run exactly).
pub(crate) struct ObserverSetup {
    pub sink: Box<dyn TraceSink>,
    pub snapshot_every: Option<SimDuration>,
}

/// Everything a run produces before the observability layer shapes it:
/// the report plus the sampled snapshots and the estimator counters that
/// [`QueryHandler::into_stats`] does not carry.
pub(crate) struct RawRun {
    pub report: SimReport,
    pub snapshots: Vec<SimSnapshot>,
    pub budget_lookups: u64,
    pub estimator_refreshes: u64,
    pub cached_budgets: u64,
}

/// Runs one simulation to completion and returns the measurements.
///
/// The run is fully deterministic in `(config.seed, input)`: service times
/// and placements are drawn from split RNG streams in request-arrival order,
/// so replaying the same input under different policies compares them on
/// identical work (the variance-reduction setup behind the paper's policy
/// comparisons).
///
/// # Panics
///
/// Panics when the input references a class outside `config.classes`, a
/// fanout larger than the cluster, or an explicit placement of the wrong
/// length.
///
/// # Example
///
/// ```
/// use tailguard::{run_simulation, ClassSpec, ClusterSpec, SimConfig, SimInput};
/// use tailguard_policy::Policy;
/// use tailguard_simcore::SimDuration;
/// use tailguard_workload::{ArrivalProcess, FanoutDist, QueryMix, Trace};
/// use tailguard_workload::TailbenchWorkload;
///
/// let trace = Trace::generate(
///     "quick",
///     &ArrivalProcess::poisson(0.5),
///     &QueryMix::single(FanoutDist::paper_mix()),
///     2_000,
///     7,
/// );
/// let cfg = SimConfig::new(
///     ClusterSpec::homogeneous(100, TailbenchWorkload::Masstree.service_dist()),
///     vec![ClassSpec::p99(SimDuration::from_millis_f64(1.0))],
///     Policy::TfEdf,
/// ).with_warmup(100);
/// let mut report = run_simulation(&cfg, &SimInput::from_trace(&trace));
/// assert!(report.completed_queries > 0);
/// assert!(report.meets_all_slos());
/// ```
pub fn run_simulation(config: &SimConfig, input: &SimInput) -> SimReport {
    run_with_observer(config, input, None).report
}

/// Runs one simulation with a caller-supplied trace sink and *nothing
/// else* from the observability layer: no snapshot events, no registry
/// ingest, no decoding. The report — including `events_processed` — is
/// identical to [`run_simulation`]'s; the only added cost is the sink's
/// own recording, which is exactly what the `obs_overhead` bench
/// measures. Use [`crate::run_simulation_observed`] for the full
/// metrics/snapshot pipeline.
pub fn run_simulation_traced(
    config: &SimConfig,
    input: &SimInput,
    sink: Box<dyn TraceSink>,
) -> SimReport {
    run_with_observer(
        config,
        input,
        Some(ObserverSetup {
            sink,
            snapshot_every: None,
        }),
    )
    .report
}

/// The shared run loop behind [`run_simulation`] and
/// [`crate::run_simulation_observed`]. Without an observer this is
/// byte-for-byte the unobserved simulation: no sink is installed (the
/// handler keeps its allocation-free [`tailguard_sched::NullSink`]) and no
/// snapshot events enter the heap, so reports — including
/// `events_processed` — are identical to the pre-observability ones.
pub(crate) fn run_with_observer(
    config: &SimConfig,
    input: &SimInput,
    observer: Option<ObserverSetup>,
) -> RawRun {
    let mut master = SimRng::seed(config.seed);
    let placement_rng = master.split();
    let service_rng = master.split();
    let mut estimator_rng = master.split();

    let mut estimator = DeadlineEstimator::new(
        &config.cluster,
        config.classes.clone(),
        config.estimator.clone(),
    );
    if let EstimatorMode::Online {
        offline_samples, ..
    } = config.estimator
    {
        estimator.seed_offline(&config.cluster, offline_samples, &mut estimator_rng);
    }
    if let Some(aw) = config.adaptive {
        estimator = estimator.with_adaptive(aw);
    }

    let servers = config.cluster.servers();
    let mut handler = QueryHandler::new(
        config.policy,
        config.classes.clone(),
        servers,
        estimator,
        config.admission,
    );
    if let Some(mitigation) = config.mitigation {
        handler = handler.with_mitigation(mitigation);
    }
    if let Some(ttl) = config.lease {
        handler = handler.with_lease(ttl);
    }
    if let Some(hc) = config.health {
        handler = handler.with_health(hc);
    }
    let (sink, snapshot_every) = match observer {
        Some(o) => (Some(o.sink), o.snapshot_every),
        None => (None, None),
    };
    if let Some(sink) = sink {
        handler = handler.with_trace_sink(sink);
    }
    let sim = ClusterSim {
        config: config.clone(),
        input: input.clone(),
        handler,
        // An empty plan is normalized to "no plan" so the hot path stays
        // the config-gated single schedule_in either way.
        faults: config.faults.clone().filter(|p| !p.is_empty()),
        placement_rng,
        service_rng,
        services: Vec::with_capacity(input.query_count() * 2),
        dispatched_at: Vec::with_capacity(input.query_count() * 2),
        query_request: Vec::new(),
        targets_scratch: Vec::new(),
        services_scratch: Vec::new(),
        started_scratch: Vec::new(),
        request_progress: vec![0; input.requests.len()],
        request_started: vec![SimTime::ZERO; input.requests.len()],
        issued_queries: 0,
        request_latency_by_class: BTreeMap::new(),
        snapshot_every,
        snapshot_pending: false,
        snapshots: Vec::new(),
        last_activity: SimTime::ZERO,
    };

    let mut engine = Engine::new(sim);
    if !input.requests.is_empty() {
        engine
            .scheduler_mut()
            .schedule_at(input.requests[0].arrival, Ev::Arrive(0));
    }
    engine.run_to_completion();
    let events = engine.processed();
    let mut state = engine.into_state();
    // `last_activity` equals `engine.now()` on unobserved runs (every
    // event updates it); on observed runs it excludes any snapshot that
    // fired after the final completion, keeping `elapsed` — and with it
    // every load ratio — identical to the unobserved run.
    let elapsed = state.last_activity;
    // Observed runs always end with one final snapshot at the last event
    // time, so even an empty or snapshot-free run yields ≥ 1 snapshot.
    // Trailing idle samples past `elapsed` are superseded by it.
    if state.snapshot_every.is_some() {
        state.snapshots.retain(|s| s.at_ns <= elapsed.as_nanos());
        state.take_snapshot(elapsed);
    }
    let budget_lookups = state.handler.estimator().budget_lookup_count();
    let estimator_refreshes = state.handler.estimator().refresh_count();
    let cached_budgets = state.handler.estimator().cached_budget_count() as u64;
    let stats = state.handler.into_stats();
    RawRun {
        report: SimReport {
            policy: config.policy,
            classes: config.classes.clone(),
            query_latency_by_class: stats.query_latency_by_class,
            query_latency_by_type: stats.query_latency_by_type,
            request_latency_by_class: state.request_latency_by_class,
            pre_dequeue: stats.pre_dequeue,
            load: stats.load,
            busy_by_server: stats.busy_by_server,
            elapsed,
            completed_queries: stats.completed_queries,
            rejected_queries: stats.rejected_queries,
            events_processed: events,
            robustness: stats.robustness,
            partial_latency: stats.partial_latency,
            lifecycle: stats.lifecycle,
            health: stats.health,
            server_health: stats.server_health,
            estimator_window_rolls: stats.estimator_window_rolls,
        },
        snapshots: state.snapshots,
        budget_lookups,
        estimator_refreshes,
        cached_budgets,
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Request `i` arrives (its first query is issued).
    Arrive(usize),
    /// The work dispatched for `task` on `server` under `token` finishes.
    /// The token fences the result: a reclaim between dispatch and finish
    /// turns this into a stale commit the handler rejects. `busy` is the
    /// effective dispatch→finish delay of *this* attempt (nominal service
    /// plus any fault hold/slowdown) — carried in the event rather than in
    /// per-task state because a reclaimed task can be re-dispatched with a
    /// different effective delay while a zombie finish is still in flight.
    Finish {
        server: u32,
        task: u32,
        token: LeaseToken,
        busy: SimDuration,
    },
    /// Time to consider hedging original task `t` (its budget-fraction
    /// threshold passed without a completion).
    HedgeCheck(u32),
    /// The lease `token` on `task` reached its TTL: reclaim the attempt if
    /// that lease is still the active one. Only scheduled when a lease TTL
    /// is configured.
    LeaseCheck { task: u32, token: LeaseToken },
    /// Observed runs only: sample a [`SimSnapshot`] of the cluster state.
    Snapshot,
}

struct ClusterSim {
    config: SimConfig,
    input: SimInput,
    handler: QueryHandler,
    /// Interval fault episodes, if configured (empty plans normalized away).
    faults: Option<FaultPlan>,
    placement_rng: SimRng,
    service_rng: SimRng,
    /// Drawn service time per handler task id — the simulator's oracle for
    /// when a started task's `Finish` event fires.
    services: Vec<SimDuration>,
    /// When each task was (last) dispatched — the window start for
    /// crash-interrupts-in-flight-work detection at finish time. Grown in
    /// lockstep with `services`.
    dispatched_at: Vec<SimTime>,
    /// Owning request per handler query id (for Fig. 1 chaining).
    query_request: Vec<u32>,
    // Per-query scratch, reused across issue_query calls so the hot path
    // does not allocate per query.
    targets_scratch: Vec<u32>,
    services_scratch: Vec<SimDuration>,
    started_scratch: Vec<DispatchedTask>,
    request_progress: Vec<usize>, // next query index per request
    request_started: Vec<SimTime>,
    issued_queries: u64,
    request_latency_by_class: BTreeMap<u8, LatencyReservoir>,
    /// Snapshot cadence in virtual time; `None` for unobserved runs (the
    /// default), which then schedule no `Ev::Snapshot` events at all.
    snapshot_every: Option<SimDuration>,
    /// True while an `Ev::Snapshot` sits in the heap — keeps at most one
    /// pending so a burst of arrivals cannot pile up samplers.
    snapshot_pending: bool,
    snapshots: Vec<SimSnapshot>,
    /// Time of the last *simulation* event (arrival/finish/hedge-check).
    /// Reported as `elapsed` so a trailing snapshot firing after the
    /// cluster drained cannot stretch observed runs' load denominators.
    last_activity: SimTime,
}

impl ClusterSim {
    fn choose_servers_into(&mut self, spec: &QuerySpec, out: &mut Vec<u32>) {
        let n = self.config.cluster.servers();
        match &spec.servers {
            Some(s) => {
                assert_eq!(
                    s.len(),
                    spec.fanout as usize,
                    "explicit placement length must equal fanout"
                );
                assert!(
                    s.iter().all(|&i| (i as usize) < n),
                    "placement server index out of range"
                );
                out.extend_from_slice(s);
            }
            None => {
                assert!(
                    spec.fanout as usize <= n,
                    "fanout {} exceeds cluster size {n}",
                    spec.fanout
                );
                out.extend(
                    self.placement_rng
                        .sample_distinct(n, spec.fanout as usize)
                        .into_iter()
                        // tg-lint: allow(lossy-cast) -- enumerate index over the admitted request/task list; run sizes are far below 2^32 and ids must stay dense
                        .map(|i| i as u32),
                );
            }
        }
    }

    fn issue_query(&mut self, now: SimTime, request: usize, sched: &mut Scheduler<Ev>) {
        // tg-lint: allow(panic-surface) -- request/query/task tables grow in lockstep with admission: ids are minted by this driver loop, so an out-of-range id is an internal-invariant breach
        let spec = self.input.requests[request].queries[self.request_progress[request]].clone();
        // Scratch buffers are moved out for the duration of the call (and
        // restored on every exit path) so the hot path reuses their
        // capacity instead of allocating per query.
        let mut targets = std::mem::take(&mut self.targets_scratch);
        targets.clear();
        self.choose_servers_into(&spec, &mut targets);
        // Service times drawn now, in issue order, for cross-policy
        // alignment — and so rejected work can be accounted.
        let mut services = std::mem::take(&mut self.services_scratch);
        services.clear();
        for &s in &targets {
            let svc = self.draw_service(s, now);
            services.push(svc);
        }

        let record = self.issued_queries >= self.config.warmup_queries as u64;
        let mut started = std::mem::take(&mut self.started_scratch);
        let decision = self.handler.on_query_arrival(
            now,
            QueryArrival {
                class: spec.class,
                targets: &targets,
                // The drawn services double as size hints so size-aware
                // policies (SJF) can order on them.
                sizes: Some(&services),
                budget_override: spec.budget_override,
                task_budgets: spec.task_budgets.as_deref(),
                record,
            },
            &mut started,
        );
        if let AdmitDecision::Admitted { .. } = decision {
            self.issued_queries += 1;
            self.services.extend_from_slice(&services);
            self.dispatched_at
                .resize(self.services.len(), SimTime::ZERO);
            // tg-lint: allow(lossy-cast) -- enumerate index over the admitted request/task list; run sizes are far below 2^32 and ids must stay dense
            self.query_request.push(request as u32);
            // Deadline-aware hedging: schedule a check at each original
            // task's hedge threshold (before dispatch, so a dispatch-time
            // fault retry cannot shift the new tasks' id range).
            if self
                .handler
                .mitigation()
                .is_some_and(|m| m.hedge_after.is_some())
            {
                let first_task = self.handler.task_count().saturating_sub(targets.len());
                for t in first_task..self.handler.task_count() {
                    // tg-lint: allow(lossy-cast) -- enumerate index over the admitted request/task list; run sizes are far below 2^32 and ids must stay dense
                    if let Some(at) = self.handler.hedge_deadline(t as u32) {
                        // tg-lint: allow(lossy-cast) -- enumerate index over the admitted request/task list; run sizes are far below 2^32 and ids must stay dense
                        sched.schedule_at(at, Ev::HedgeCheck(t as u32));
                    }
                }
            }
            for &d in &started {
                self.dispatch(now, d, sched);
            }
        }
        // On rejection no state is created: the query terminates its
        // request (no successors).
        self.targets_scratch = targets;
        self.services_scratch = services;
        self.started_scratch = started;
    }

    /// Draws one service time for `server` at `now`: the cluster's service
    /// distribution, inflated by any active step [`crate::spec::Slowdown`]s
    /// (interval fault episodes apply later, at dispatch time).
    fn draw_service(&mut self, server: u32, now: SimTime) -> SimDuration {
        let mut ms = self
            .config
            .cluster
            .service_of(server as usize)
            .sample(&mut self.service_rng);
        for sd in &self.config.slowdowns {
            if now >= sd.at && sd.servers.contains(&server) {
                ms *= sd.factor;
            }
        }
        SimDuration::from_millis_f64(ms)
    }

    /// Begins the actual work of a task the handler just moved into
    /// service. Without a fault plan this is exactly the one `schedule_in`
    /// the pre-fault simulator did; with one, the task can be swallowed by
    /// an active crash (recoverable only through lease reclaim), dropped by
    /// an active blackout (lost, possibly retried), or its completion
    /// deferred by stall/restart/slowdown episodes.
    fn dispatch(&mut self, now: SimTime, d: DispatchedTask, sched: &mut Scheduler<Ev>) {
        // tg-lint: allow(panic-surface) -- request/query/task tables grow in lockstep with admission: ids are minted by this driver loop, so an out-of-range id is an internal-invariant breach
        self.dispatched_at[d.task as usize] = now;
        // The lease check is armed before any fault can swallow the
        // dispatch: for a crashed node it is the *only* recovery path.
        if let Some(expiry) = self.handler.lease_expiry(d.task) {
            sched.schedule_at(
                expiry,
                Ev::LeaseCheck {
                    task: d.task,
                    token: d.lease,
                },
            );
        }
        // tg-lint: allow(panic-surface) -- request/query/task tables grow in lockstep with admission: ids are minted by this driver loop, so an out-of-range id is an internal-invariant breach
        let service = self.services[d.task as usize];
        let Some(faults) = &self.faults else {
            sched.schedule_in(
                now,
                service,
                Ev::Finish {
                    server: d.server,
                    task: d.task,
                    token: d.lease,
                    busy: service,
                },
            );
            return;
        };
        if faults.crashed(d.server, now) {
            // The node is down and never saw the dispatch: no loss report,
            // no finish event. Without a lease TTL the attempt is gone.
            return;
        }
        if faults.drops(d.server, now) {
            let lost = self.handler.on_task_lost(now, d.task, d.lease);
            self.apply_lost(now, lost, sched);
            return;
        }
        // The effective dispatch→finish delay rides in the event so
        // busy/estimator accounting at completion observes the fault. The
        // nominal draw in `services` is never overwritten: a reclaimed task
        // re-dispatches from the same nominal service, so repeated reclaims
        // cannot compound fault holds into the service time.
        let delay = faults.completion_delay(d.server, now, service);
        sched.schedule_in(
            now,
            delay,
            Ev::Finish {
                server: d.server,
                task: d.task,
                token: d.lease,
                busy: delay,
            },
        );
    }

    /// Applies the fallout of a lost task: the freed server's next task is
    /// dispatched first (work conservation), then the retry the handler
    /// planned (with a fresh service draw for the backup server), then any
    /// query resolution the loss caused.
    fn apply_lost(&mut self, now: SimTime, lost: LostTask, sched: &mut Scheduler<Ev>) {
        if let Some(next) = lost.next {
            self.dispatch(now, next, sched);
        }
        if let Some(retry) = lost.retry {
            let svc = self.draw_service(retry.server, now);
            let (task, dispatched) = self.handler.issue_duplicate(
                now,
                retry.slot,
                retry.server,
                Some(svc),
                AttemptKind::Retry,
            );
            debug_assert_eq!(task as usize, self.services.len());
            self.services.push(svc);
            self.dispatched_at.push(SimTime::ZERO);
            if let Some(d) = dispatched {
                self.dispatch(now, d, sched);
            }
        }
        if let Some(done) = lost.done {
            self.handle_done(now, done, sched);
        }
    }

    /// A hedge threshold fired: if the slot is still unresolved and under
    /// its attempt cap, issue a hedge copy on the least-loaded backup.
    fn hedge_check(&mut self, now: SimTime, task: u32, sched: &mut Scheduler<Ev>) {
        let Some(server) = self.handler.hedge_target(now, task) else {
            return;
        };
        let svc = self.draw_service(server, now);
        let (id, dispatched) =
            self.handler
                .issue_duplicate(now, task, server, Some(svc), AttemptKind::Hedge);
        debug_assert_eq!(id as usize, self.services.len());
        self.services.push(svc);
        self.dispatched_at.push(SimTime::ZERO);
        if let Some(d) = dispatched {
            self.dispatch(now, d, sched);
        }
    }

    fn finish_task(
        &mut self,
        now: SimTime,
        server: u32,
        task: u32,
        token: LeaseToken,
        busy: SimDuration,
        sched: &mut Scheduler<Ev>,
    ) {
        let mut duplicate = false;
        if let Some(faults) = &self.faults {
            // A crash that began after dispatch swallows in-flight work:
            // the node restarted and forgot the task, so nothing lands and
            // nobody is notified. Only the lease reclaim recovers it.
            // tg-lint: allow(panic-surface) -- request/query/task tables grow in lockstep with admission: ids are minted by this driver loop, so an out-of-range id is an internal-invariant breach
            if faults.crash_started_within(server, self.dispatched_at[task as usize], now) {
                return;
            }
            // The result lands inside a blackout or a restart: it is lost
            // with the server's work, but the scheduler hears about it (the
            // sim analog of a node failing mid-reply with a NACK).
            if faults.drops(server, now) || faults.restart_loses(server, now) {
                let lost = self.handler.on_task_lost(now, task, token);
                self.apply_lost(now, lost, sched);
                return;
            }
            duplicate = faults.duplicates(server, now);
        }
        let completion = self.handler.on_task_complete(now, task, token, busy);
        if duplicate {
            // At-least-once delivery: the same result (same lease token)
            // arrives a second time; the state store suppresses it.
            let _ = self.handler.on_task_complete(now, task, token, busy);
        }

        // Work conservation: the freed server's next task is scheduled
        // *before* any successor query is issued, so a chained query cannot
        // jump the queue (and cannot double-start the server).
        if let Some(next) = completion.next {
            self.dispatch(now, next, sched);
        }

        if let Some(done) = completion.done {
            self.handle_done(now, done, sched);
        }
    }

    /// A lease TTL elapsed. If that lease is still the active one the
    /// attempt is reclaimed — re-enqueued with its *original* deadline —
    /// and the suspected server's next task dispatched; otherwise (the
    /// common case: the work committed first) this is a pure no-op. Only a
    /// real reclaim counts as activity, so lease-only runs keep `elapsed`
    /// — and every load ratio — identical to lease-free ones.
    fn lease_check(
        &mut self,
        now: SimTime,
        task: u32,
        token: LeaseToken,
        sched: &mut Scheduler<Ev>,
    ) {
        let before = self.handler.lifecycle().reclaims;
        let next = self.handler.on_lease_expired(now, task, token);
        if self.handler.lifecycle().reclaims > before {
            self.last_activity = now;
        }
        if let Some(d) = next {
            self.dispatch(now, d, sched);
        }
    }

    /// Samples the cluster's instantaneous and cumulative state at `now`.
    fn take_snapshot(&mut self, now: SimTime) {
        let load = &self.handler.stats().load;
        self.snapshots.push(SimSnapshot {
            at_ns: now.as_nanos(),
            queued_tasks: self.handler.queued_tasks() as u64,
            servers_busy: self.handler.servers_busy() as u64,
            queries_offered: load.queries_offered_count(),
            queries_accepted: load.queries_accepted_count(),
            queries_rejected: load.queries_rejected_count(),
            tasks_dispatched: load.tasks_dispatched_count(),
            tasks_completed: load.tasks_completed_count(),
            deadline_misses: load.deadline_miss_count(),
            deadline_miss_ratio: load.deadline_miss_ratio(),
        });
    }

    /// Arms the next `Ev::Snapshot` if the run is observed and none is
    /// pending. Called from arrivals (so sampling resumes after an idle
    /// gap) and from the snapshot handler itself while work remains — when
    /// the cluster drains with no arrivals left, no snapshot is re-armed
    /// and the event heap can empty.
    fn schedule_snapshot(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.snapshot_pending {
            return;
        }
        if let Some(every) = self.snapshot_every {
            self.snapshot_pending = true;
            sched.schedule_in(now, every, Ev::Snapshot);
        }
    }

    /// Sequential request chaining (Fig. 1): a finished query issues its
    /// request's next query, or records the request latency when it was the
    /// last (partial and failed completions advance the chain too — the
    /// request does not stall on a degraded answer).
    fn handle_done(&mut self, now: SimTime, done: QueryDone, sched: &mut Scheduler<Ev>) {
        // tg-lint: allow(panic-surface) -- request/query/task tables grow in lockstep with admission: ids are minted by this driver loop, so an out-of-range id is an internal-invariant breach
        let request = self.query_request[done.query as usize] as usize;
        // tg-lint: allow(panic-surface) -- request/query/task tables grow in lockstep with admission: ids are minted by this driver loop, so an out-of-range id is an internal-invariant breach
        self.request_progress[request] += 1;
        // tg-lint: allow(panic-surface) -- request/query/task tables grow in lockstep with admission: ids are minted by this driver loop, so an out-of-range id is an internal-invariant breach
        let req_input = &self.input.requests[request];
        // tg-lint: allow(panic-surface) -- request/query/task tables grow in lockstep with admission: ids are minted by this driver loop, so an out-of-range id is an internal-invariant breach
        if self.request_progress[request] < req_input.queries.len() {
            self.issue_query(now, request, sched);
        } else if req_input.queries.len() > 1 {
            // tg-lint: allow(panic-surface) -- request/query/task tables grow in lockstep with admission: ids are minted by this driver loop, so an out-of-range id is an internal-invariant breach
            let req_latency = now.saturating_since(self.request_started[request]);
            let first_class = req_input.queries[0].class;
            self.request_latency_by_class
                .entry(first_class)
                .or_default()
                .record(req_latency);
        }
    }
}

impl Simulation for ClusterSim {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        if !matches!(ev, Ev::Snapshot | Ev::LeaseCheck { .. }) {
            self.last_activity = now;
        }
        match ev {
            Ev::Arrive(i) => {
                // Chain the next arrival (requests are pre-sorted).
                if i + 1 < self.input.requests.len() {
                    // tg-lint: allow(panic-surface) -- request/query/task tables grow in lockstep with admission: ids are minted by this driver loop, so an out-of-range id is an internal-invariant breach
                    let t = self.input.requests[i + 1].arrival;
                    sched.schedule_at(t.max(now), Ev::Arrive(i + 1));
                }
                // tg-lint: allow(panic-surface) -- request/query/task tables grow in lockstep with admission: ids are minted by this driver loop, so an out-of-range id is an internal-invariant breach
                self.request_started[i] = now;
                self.issue_query(now, i, sched);
                self.schedule_snapshot(now, sched);
            }
            Ev::Finish {
                server,
                task,
                token,
                busy,
            } => self.finish_task(now, server, task, token, busy, sched),
            Ev::HedgeCheck(task) => self.hedge_check(now, task, sched),
            Ev::LeaseCheck { task, token } => self.lease_check(now, task, token, sched),
            Ev::Snapshot => {
                self.snapshot_pending = false;
                self.take_snapshot(now);
                if self.handler.queued_tasks() > 0 || self.handler.servers_busy() > 0 {
                    self.schedule_snapshot(now, sched);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AdmissionConfig, ClassSpec, ClusterSpec, RequestInput};
    use tailguard_dist::Deterministic;
    use tailguard_policy::Policy;
    use tailguard_workload::{ArrivalProcess, FanoutDist, QueryMix, Trace};

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis_f64(v)
    }

    fn det_cluster(n: usize, service_ms: f64) -> ClusterSpec {
        ClusterSpec::homogeneous(n, Deterministic::new(service_ms))
    }

    fn one_query_input(arrivals_ms: &[u64], class: u8, fanout: u32) -> SimInput {
        SimInput {
            requests: arrivals_ms
                .iter()
                .map(|&t| RequestInput {
                    arrival: SimTime::from_millis(t),
                    queries: vec![QuerySpec::new(class, fanout)],
                })
                .collect(),
        }
    }

    #[test]
    fn single_query_latency_is_service_time_when_idle() {
        let cfg = SimConfig::new(
            det_cluster(4, 2.0),
            vec![ClassSpec::p99(ms(10.0))],
            Policy::Fifo,
        )
        .with_warmup(0);
        let input = one_query_input(&[0], 0, 4);
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.completed_queries, 1);
        // All four tasks run in parallel on idle servers: latency = 2ms.
        assert_eq!(report.class_tail(0, 0.99), ms(2.0));
        assert_eq!(report.deadline_miss_ratio(), 0.0);
    }

    #[test]
    fn queueing_serializes_on_one_server() {
        // Two fanout-1 queries arrive together on a 1-server cluster.
        let cfg = SimConfig::new(
            det_cluster(1, 3.0),
            vec![ClassSpec::p99(ms(100.0))],
            Policy::Fifo,
        )
        .with_warmup(0);
        let input = one_query_input(&[0, 0], 0, 1);
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.completed_queries, 2);
        // Latencies 3ms and 6ms → p99 = 6ms, median 3ms.
        assert_eq!(report.class_tail(0, 0.99), ms(6.0));
        assert_eq!(report.class_tail(0, 0.5), ms(3.0));
        // The second task waited 3ms.
        assert_eq!(report.pre_dequeue.percentile(1.0), ms(3.0));
    }

    #[test]
    fn work_conservation_no_idle_with_backlog() {
        // Many queries on a small deterministic cluster: total busy time
        // must equal tasks × service.
        let cfg = SimConfig::new(
            det_cluster(2, 1.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);
        let arrivals: Vec<u64> = (0..100).collect();
        let input = one_query_input(&arrivals, 0, 2);
        let report = run_simulation(&cfg, &input);
        let busy_ms = report.accepted_load() * report.elapsed.as_millis_f64() * 2.0;
        assert!((busy_ms - 200.0).abs() < 1e-6, "busy {busy_ms}");
    }

    #[test]
    fn deterministic_across_runs_and_policies_share_work() {
        let trace = Trace::generate(
            "d",
            &ArrivalProcess::poisson(1.0),
            &QueryMix::single(FanoutDist::paper_mix()),
            2_000,
            3,
        );
        let input = SimInput::from_trace(&trace);
        let base = SimConfig::new(
            ClusterSpec::homogeneous(
                100,
                tailguard_workload::TailbenchWorkload::Masstree.service_dist(),
            ),
            vec![ClassSpec::p99(ms(1.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);

        let mut a = run_simulation(&base, &input);
        let mut b = run_simulation(&base, &input);
        assert_eq!(a.class_tail(0, 0.99), b.class_tail(0, 0.99));
        assert_eq!(a.completed_queries, b.completed_queries);

        // Different policy, same total work (same draws).
        let fifo = run_simulation(&base.clone().with_policy(Policy::Fifo), &input);
        let work_a = a.accepted_load() * a.elapsed.as_millis_f64();
        let work_f = fifo.accepted_load() * fifo.elapsed.as_millis_f64();
        assert!((work_a - work_f).abs() < 1e-6);
    }

    #[test]
    fn warmup_discards_prefix() {
        let cfg = SimConfig::new(
            det_cluster(1, 1.0),
            vec![ClassSpec::p99(ms(100.0))],
            Policy::Fifo,
        )
        .with_warmup(5);
        let input = one_query_input(&[0, 10, 20, 30, 40, 50, 60], 0, 1);
        let report = run_simulation(&cfg, &input);
        assert_eq!(report.completed_queries, 2); // 7 issued − 5 warm-up
    }

    #[test]
    fn edf_reorders_for_tight_deadline() {
        // One server busy; a loose-deadline task queued, then a tight one.
        // TF-EDF must serve the tight one first; FIFO must not.
        let cluster = det_cluster(1, 10.0);
        let classes = vec![ClassSpec::p99(ms(1000.0)), ClassSpec::p99(ms(12.0))];
        let input = SimInput {
            requests: vec![
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec::new(0, 1)], // occupies the server
                },
                RequestInput {
                    arrival: SimTime::from_millis(1),
                    queries: vec![QuerySpec::new(0, 1)], // loose
                },
                RequestInput {
                    arrival: SimTime::from_millis(2),
                    queries: vec![QuerySpec::new(1, 1)], // tight
                },
            ],
        };
        let run = |policy: Policy| {
            let cfg = SimConfig::new(cluster.clone(), classes.clone(), policy).with_warmup(0);
            let mut r = run_simulation(&cfg, &input);
            (
                r.class_tail(0, 1.0).as_millis_f64(),
                r.class_tail(1, 1.0).as_millis_f64(),
            )
        };
        let (_, tight_fifo) = run(Policy::Fifo);
        let (_, tight_edf) = run(Policy::TfEdf);
        assert!(
            tight_edf < tight_fifo,
            "EDF must prioritize the tight class: {tight_edf} vs {tight_fifo}"
        );
    }

    #[test]
    fn priq_prefers_class_zero() {
        let cluster = det_cluster(1, 10.0);
        let classes = vec![ClassSpec::p99(ms(1000.0)), ClassSpec::p99(ms(1000.0))];
        let input = SimInput {
            requests: vec![
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec::new(1, 1)],
                },
                RequestInput {
                    arrival: SimTime::from_millis(1),
                    queries: vec![QuerySpec::new(1, 1)],
                },
                RequestInput {
                    arrival: SimTime::from_millis(2),
                    queries: vec![QuerySpec::new(0, 1)],
                },
            ],
        };
        let cfg = SimConfig::new(cluster, classes, Policy::Priq).with_warmup(0);
        let mut r = run_simulation(&cfg, &input);
        // Class 0 arrived last but jumps the queued class-1 task:
        // finishes at 20ms (latency 18), class-1 queued finishes at 30 (29).
        assert_eq!(r.class_tail(0, 1.0), ms(18.0));
        assert_eq!(r.class_tail(1, 1.0), ms(29.0));
    }

    #[test]
    fn admission_control_rejects_under_overload() {
        // Overload a single slow server; with a tight threshold the
        // controller must start rejecting queries.
        let cfg = SimConfig::new(
            det_cluster(1, 5.0),
            vec![ClassSpec::p99(ms(6.0))],
            Policy::TfEdf,
        )
        .with_admission(
            AdmissionConfig::new(SimDuration::from_millis(100), 0.05).with_min_samples(5),
        )
        .with_warmup(0);
        let arrivals: Vec<u64> = (0..200).collect(); // 1/ms vs capacity 0.2/ms
        let input = one_query_input(&arrivals, 0, 1);
        let report = run_simulation(&cfg, &input);
        assert!(
            report.rejected_queries > 80,
            "rejected only {}",
            report.rejected_queries
        );
        assert!(report.rejected_load() > 0.0);
        assert!(report.offered_load() > report.accepted_load());
    }

    #[test]
    fn count_window_admission_rejects_under_overload() {
        // Same overload through the count-window admission variant: the
        // miss ratio over the most recent dequeues must trip rejection too.
        let cfg = SimConfig::new(
            det_cluster(1, 5.0),
            vec![ClassSpec::p99(ms(6.0))],
            Policy::TfEdf,
        )
        .with_admission(
            AdmissionConfig::new(SimDuration::from_millis(100), 0.05)
                .with_min_samples(5)
                .with_count_window(20),
        )
        .with_warmup(0);
        let arrivals: Vec<u64> = (0..200).collect();
        let input = one_query_input(&arrivals, 0, 1);
        let report = run_simulation(&cfg, &input);
        assert!(
            report.rejected_queries > 80,
            "rejected only {}",
            report.rejected_queries
        );
        assert_eq!(
            report.load.queries_offered_count(),
            report.rejected_queries + report.load.queries_accepted_count()
        );
    }

    #[test]
    fn multi_query_requests_run_sequentially() {
        // A 3-query request on an idle cluster: request latency = 3 × 2ms.
        let cfg = SimConfig::new(
            det_cluster(2, 2.0),
            vec![ClassSpec::p99(ms(100.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);
        let input = SimInput {
            requests: vec![RequestInput {
                arrival: SimTime::ZERO,
                queries: vec![
                    QuerySpec::new(0, 2),
                    QuerySpec::new(0, 2),
                    QuerySpec::new(0, 2),
                ],
            }],
        };
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.completed_queries, 3);
        let req = report
            .request_latency_by_class
            .get_mut(&0)
            .expect("request latency recorded");
        assert_eq!(req.percentile(1.0), ms(6.0));
    }

    #[test]
    fn chained_query_cannot_double_start_a_server() {
        // Regression: a request's successor query issued at completion time
        // must not start on a server that still has queued work, nor
        // double-occupy the server that just freed up.
        let cfg = SimConfig::new(
            det_cluster(1, 4.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);
        let input = SimInput {
            requests: vec![
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec::new(0, 1), QuerySpec::new(0, 1)],
                },
                RequestInput {
                    arrival: SimTime::from_millis(1),
                    queries: vec![QuerySpec::new(0, 1)],
                },
            ],
        };
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.completed_queries, 3);
        // Serialized on one server: busy 12ms total, queued task (arrived
        // at 1ms) runs second (finishes at 8ms, latency 7ms), chained query
        // runs last (finishes at 12ms, its own latency 12-4=8ms).
        assert_eq!(report.class_tail(0, 1.0), ms(8.0));
        let req = report
            .request_latency_by_class
            .get_mut(&0)
            .expect("request recorded");
        assert_eq!(req.percentile(1.0), ms(12.0));
    }

    #[test]
    fn explicit_placement_is_honored() {
        // Pin both tasks to server 0: they serialize (latency 2·service).
        let cfg = SimConfig::new(
            det_cluster(4, 2.0),
            vec![ClassSpec::p99(ms(100.0))],
            Policy::Fifo,
        )
        .with_warmup(0);
        let input = SimInput {
            requests: vec![RequestInput {
                arrival: SimTime::ZERO,
                queries: vec![QuerySpec {
                    class: 0,
                    fanout: 2,
                    servers: Some(vec![0, 0]),
                    budget_override: None,
                    task_budgets: None,
                }],
            }],
        };
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.class_tail(0, 1.0), ms(4.0));
    }

    #[test]
    fn budget_override_controls_deadline() {
        // Zero budget → any queued task is late; generous budget → on time.
        let mk_input = |budget: SimDuration| SimInput {
            requests: vec![
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec::new(0, 1)],
                },
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec {
                        class: 0,
                        fanout: 1,
                        servers: None,
                        budget_override: Some(budget),
                        task_budgets: None,
                    }],
                },
            ],
        };
        let cfg = SimConfig::new(
            det_cluster(1, 5.0),
            vec![ClassSpec::p99(ms(100.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);
        let tight = run_simulation(&cfg, &mk_input(SimDuration::ZERO));
        assert!(tight.deadline_miss_ratio() > 0.0);
        let loose = run_simulation(&cfg, &mk_input(ms(50.0)));
        assert_eq!(loose.deadline_miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "fanout 5 exceeds cluster size 2")]
    fn oversized_fanout_panics() {
        let cfg = SimConfig::new(
            det_cluster(2, 1.0),
            vec![ClassSpec::p99(ms(10.0))],
            Policy::Fifo,
        );
        let input = one_query_input(&[0], 0, 5);
        let _ = run_simulation(&cfg, &input);
    }

    #[test]
    fn per_task_budgets_order_the_queue() {
        // Footnote-4 ablation hook: two tasks of one query pinned to one
        // busy server, with per-task budgets reversing arrival order.
        let cfg = SimConfig::new(
            det_cluster(1, 5.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);
        let input = SimInput {
            requests: vec![
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec::new(0, 1)], // occupies the server
                },
                RequestInput {
                    arrival: SimTime::from_millis(1),
                    queries: vec![QuerySpec {
                        class: 0,
                        fanout: 2,
                        servers: Some(vec![0, 0]),
                        budget_override: None,
                        // Second task far more urgent than the first.
                        task_budgets: Some(vec![ms(100.0), ms(1.0)]),
                    }],
                },
            ],
        };
        let report = run_simulation(&cfg, &input);
        // Pre-dequeue times: urgent task waited 4ms (served first at t=5),
        // lax task waited 9ms (served at t=10).
        let mut pre = report.pre_dequeue.clone();
        assert_eq!(pre.percentile(1.0), ms(9.0));
        let sorted = pre.sorted_samples().to_vec();
        assert_eq!(sorted[1], ms(4.0).as_nanos());
    }

    #[test]
    #[should_panic(expected = "task budget count must equal fanout")]
    fn per_task_budgets_must_match_fanout() {
        let cfg = SimConfig::new(
            det_cluster(2, 1.0),
            vec![ClassSpec::p99(ms(10.0))],
            Policy::TfEdf,
        );
        let input = SimInput {
            requests: vec![RequestInput {
                arrival: SimTime::ZERO,
                queries: vec![QuerySpec {
                    class: 0,
                    fanout: 2,
                    servers: None,
                    budget_override: None,
                    task_budgets: Some(vec![ms(1.0)]),
                }],
            }],
        };
        let _ = run_simulation(&cfg, &input);
    }

    #[test]
    fn slowdown_multiplies_service_after_cutover() {
        use crate::spec::Slowdown;
        let cfg = SimConfig::new(
            det_cluster(1, 2.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::Fifo,
        )
        .with_warmup(0)
        .with_slowdown(Slowdown::new(SimTime::from_millis(5), 0..1, 3.0));
        // One query before the cutover (latency 2ms), one after (6ms).
        let input = one_query_input(&[0, 10], 0, 1);
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.class_tail(0, 0.4), ms(2.0));
        assert_eq!(report.class_tail(0, 1.0), ms(6.0));
    }

    #[test]
    fn slowdown_only_affects_named_servers() {
        use crate::spec::Slowdown;
        let cfg = SimConfig::new(
            det_cluster(2, 2.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::Fifo,
        )
        .with_warmup(0)
        .with_slowdown(Slowdown::new(SimTime::ZERO, 1..2, 5.0));
        // Fanout 2: one task per server. Slow server dominates: 10ms.
        let input = one_query_input(&[0], 0, 2);
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.class_tail(0, 1.0), ms(10.0));
        // Fast server's busy time stays 2ms.
        assert_eq!(report.busy_by_server[0], ms(2.0));
        assert_eq!(report.busy_by_server[1], ms(10.0));
    }

    #[test]
    fn slowdowns_compose_multiplicatively() {
        use crate::spec::Slowdown;
        let cfg = SimConfig::new(
            det_cluster(1, 1.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::Fifo,
        )
        .with_warmup(0)
        .with_slowdown(Slowdown::new(SimTime::ZERO, 0..1, 2.0))
        .with_slowdown(Slowdown::new(SimTime::ZERO, 0..1, 3.0));
        let input = one_query_input(&[0], 0, 1);
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.class_tail(0, 1.0), ms(6.0));
    }

    #[test]
    fn empty_input_is_benign() {
        let cfg = SimConfig::new(
            det_cluster(2, 1.0),
            vec![ClassSpec::p99(ms(10.0))],
            Policy::Fifo,
        );
        let report = run_simulation(&cfg, &SimInput::default());
        assert_eq!(report.completed_queries, 0);
        assert_eq!(report.elapsed, SimTime::ZERO);
    }
}

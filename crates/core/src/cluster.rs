//! The discrete-event cluster simulator.
//!
//! Implements the TailGuard query processing model of Fig. 2: a query
//! handler receives requests, spawns `k_f` tasks per query, computes the
//! task queuing deadline `t_D = t_0 + T_b` (Eq. 6), and dispatches the tasks
//! to per-server queues managed by the configured policy. Each task server
//! serves one task at a time, work-conserving: whenever a task finishes, the
//! task at the head of the queue enters service immediately.
//!
//! Deadline misses are detected at *dequeue* time (`t_dequeue > t_D`) and
//! feed both the load statistics and the admission controller's moving
//! window (§III.C).

use crate::estimator::{DeadlineEstimator, EstimatorMode};
use crate::report::{QueryTypeKey, SimReport};
use crate::spec::{QuerySpec, SimConfig, SimInput};
use std::collections::BTreeMap;
use tailguard_metrics::{LatencyReservoir, LoadStats, TimedRatio};
use tailguard_policy::{DeadlineRule, QueuedTask, ServiceClass, TaskQueue};
use tailguard_simcore::{Engine, Scheduler, SimDuration, SimRng, SimTime, Simulation};

/// Runs one simulation to completion and returns the measurements.
///
/// The run is fully deterministic in `(config.seed, input)`: service times
/// and placements are drawn from split RNG streams in request-arrival order,
/// so replaying the same input under different policies compares them on
/// identical work (the variance-reduction setup behind the paper's policy
/// comparisons).
///
/// # Panics
///
/// Panics when the input references a class outside `config.classes`, a
/// fanout larger than the cluster, or an explicit placement of the wrong
/// length.
///
/// # Example
///
/// ```
/// use tailguard::{run_simulation, ClassSpec, ClusterSpec, SimConfig, SimInput};
/// use tailguard_policy::Policy;
/// use tailguard_simcore::SimDuration;
/// use tailguard_workload::{ArrivalProcess, FanoutDist, QueryMix, Trace};
/// use tailguard_workload::TailbenchWorkload;
///
/// let trace = Trace::generate(
///     "quick",
///     &ArrivalProcess::poisson(0.5),
///     &QueryMix::single(FanoutDist::paper_mix()),
///     2_000,
///     7,
/// );
/// let cfg = SimConfig::new(
///     ClusterSpec::homogeneous(100, TailbenchWorkload::Masstree.service_dist()),
///     vec![ClassSpec::p99(SimDuration::from_millis_f64(1.0))],
///     Policy::TfEdf,
/// ).with_warmup(100);
/// let mut report = run_simulation(&cfg, &SimInput::from_trace(&trace));
/// assert!(report.completed_queries > 0);
/// assert!(report.meets_all_slos());
/// ```
pub fn run_simulation(config: &SimConfig, input: &SimInput) -> SimReport {
    let mut master = SimRng::seed(config.seed);
    let placement_rng = master.split();
    let service_rng = master.split();
    let mut estimator_rng = master.split();

    let mut estimator = DeadlineEstimator::new(
        &config.cluster,
        config.classes.clone(),
        config.estimator.clone(),
    );
    if let EstimatorMode::Online {
        offline_samples, ..
    } = config.estimator
    {
        estimator.seed_offline(&config.cluster, offline_samples, &mut estimator_rng);
    }

    let servers = config.cluster.servers();
    let sim = ClusterSim {
        config: config.clone(),
        input: input.clone(),
        estimator,
        placement_rng,
        service_rng,
        servers: (0..servers)
            .map(|_| ServerState {
                queue: config.policy.new_queue(),
                in_service: None,
            })
            .collect(),
        tasks: Vec::with_capacity(input.query_count() * 2),
        queries: Vec::new(),
        targets_scratch: Vec::new(),
        services_scratch: Vec::new(),
        request_progress: vec![0; input.requests.len()],
        request_started: vec![SimTime::ZERO; input.requests.len()],
        issued_queries: 0,
        admission_window: config.admission.map(|a| TimedRatio::new(a.window)),
        rejecting: false,
        report: SimReport {
            policy: config.policy,
            classes: config.classes.clone(),
            query_latency_by_class: BTreeMap::new(),
            query_latency_by_type: BTreeMap::new(),
            request_latency_by_class: BTreeMap::new(),
            pre_dequeue: LatencyReservoir::new(),
            load: LoadStats::new(servers),
            busy_by_server: vec![SimDuration::ZERO; servers],
            elapsed: SimTime::ZERO,
            completed_queries: 0,
            rejected_queries: 0,
            events_processed: 0,
        },
    };

    let mut engine = Engine::new(sim);
    if !input.requests.is_empty() {
        engine
            .scheduler_mut()
            .schedule_at(input.requests[0].arrival, Ev::Arrive(0));
    }
    engine.run_to_completion();
    let elapsed = engine.now();
    let events = engine.processed();
    let mut state = engine.into_state();
    state.report.elapsed = elapsed;
    state.report.events_processed = events;
    state.report
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Request `i` arrives (its first query is issued).
    Arrive(usize),
    /// The task in service at server `s` finishes.
    Finish(u32),
}

struct TaskState {
    query: u32,
    service: SimDuration,
}

struct QueryRuntime {
    request: u32,
    class: u8,
    fanout: u32,
    started_at: SimTime,
    outstanding: u32,
    record: bool,
}

struct ServerState {
    queue: Box<dyn TaskQueue>,
    in_service: Option<u32>, // task id
}

struct ClusterSim {
    config: SimConfig,
    input: SimInput,
    estimator: DeadlineEstimator,
    placement_rng: SimRng,
    service_rng: SimRng,
    servers: Vec<ServerState>,
    tasks: Vec<TaskState>,
    queries: Vec<QueryRuntime>,
    // Per-query scratch, reused across issue_query calls so the hot path
    // does not allocate per query.
    targets_scratch: Vec<u32>,
    services_scratch: Vec<SimDuration>,
    request_progress: Vec<usize>, // next query index per request
    request_started: Vec<SimTime>,
    issued_queries: u64,
    admission_window: Option<TimedRatio>,
    rejecting: bool,
    report: SimReport,
}

impl ClusterSim {
    fn admission_rejects(&mut self, now: SimTime) -> bool {
        match (&self.config.admission, &mut self.admission_window) {
            (Some(adm), Some(win)) => {
                if win.len(now) < adm.min_samples {
                    self.rejecting = false;
                    return false;
                }
                let ratio = win.ratio(now);
                if self.rejecting {
                    if ratio < adm.resume_threshold {
                        self.rejecting = false;
                    }
                } else if ratio > adm.threshold {
                    self.rejecting = true;
                }
                self.rejecting
            }
            _ => false,
        }
    }

    fn choose_servers_into(&mut self, spec: &QuerySpec, out: &mut Vec<u32>) {
        let n = self.servers.len();
        match &spec.servers {
            Some(s) => {
                assert_eq!(
                    s.len(),
                    spec.fanout as usize,
                    "explicit placement length must equal fanout"
                );
                assert!(
                    s.iter().all(|&i| (i as usize) < n),
                    "placement server index out of range"
                );
                out.extend_from_slice(s);
            }
            None => {
                assert!(
                    spec.fanout as usize <= n,
                    "fanout {} exceeds cluster size {n}",
                    spec.fanout
                );
                out.extend(
                    self.placement_rng
                        .sample_distinct(n, spec.fanout as usize)
                        .into_iter()
                        .map(|i| i as u32),
                );
            }
        }
    }

    fn issue_query(&mut self, now: SimTime, request: usize, sched: &mut Scheduler<Ev>) {
        let spec = self.input.requests[request].queries[self.request_progress[request]].clone();
        assert!(
            (spec.class as usize) < self.config.classes.len(),
            "query class {} out of range",
            spec.class
        );
        self.report.load.query_offered();
        // Scratch buffers are moved out for the duration of the call (and
        // restored on every exit path) so the hot path reuses their
        // capacity instead of allocating per query.
        let mut targets = std::mem::take(&mut self.targets_scratch);
        targets.clear();
        self.choose_servers_into(&spec, &mut targets);
        // Service times drawn now, in issue order, for cross-policy
        // alignment — and so rejected work can be accounted.
        let mut services = std::mem::take(&mut self.services_scratch);
        services.clear();
        for &s in &targets {
            let mut ms = self
                .config
                .cluster
                .service_of(s as usize)
                .sample(&mut self.service_rng);
            for sd in &self.config.slowdowns {
                if now >= sd.at && sd.servers.contains(&s) {
                    ms *= sd.factor;
                }
            }
            services.push(SimDuration::from_millis_f64(ms));
        }

        if self.admission_rejects(now) {
            self.report.rejected_queries += 1;
            for &svc in &services {
                self.report.load.record_rejected_work(svc);
            }
            self.targets_scratch = targets;
            self.services_scratch = services;
            // A rejected query terminates its request (no successors).
            return;
        }
        self.report.load.query_accepted();

        let record = self.issued_queries >= self.config.warmup_queries as u64;
        self.issued_queries += 1;

        // Eq. 6 (or the baseline's rule): the shared queuing deadline.
        let budget = match spec.budget_override {
            Some(b) => b,
            None => match self.config.policy.deadline_rule() {
                DeadlineRule::SloOnly => self.config.classes[spec.class as usize].slo,
                // FIFO/PRIQ ignore deadlines for ordering; we still stamp
                // the TailGuard deadline so miss accounting is comparable.
                DeadlineRule::SloAndFanout | DeadlineRule::Unused => {
                    self.estimator.budget(spec.class, spec.fanout, &targets)
                }
            },
        };
        let deadline = now + budget;
        if let Some(tb) = &spec.task_budgets {
            assert_eq!(
                tb.len(),
                spec.fanout as usize,
                "task budget count must equal fanout"
            );
        }

        let query_id = self.queries.len() as u32;
        self.queries.push(QueryRuntime {
            request: request as u32,
            class: spec.class,
            fanout: spec.fanout,
            started_at: now,
            outstanding: spec.fanout,
            record,
        });

        for (idx, (&server, &service)) in targets.iter().zip(&services).enumerate() {
            let task_id = self.tasks.len() as u32;
            self.tasks.push(TaskState {
                query: query_id,
                service,
            });
            self.report.load.task_dispatched();
            // Footnote-4 ablation hook: per-task deadlines when provided.
            let task_deadline = match &spec.task_budgets {
                Some(tb) => now + tb[idx],
                None => deadline,
            };
            let entry = QueuedTask::new(
                u64::from(task_id),
                ServiceClass(spec.class),
                task_deadline,
                now,
            )
            .with_size_hint(service);
            let state = &mut self.servers[server as usize];
            if state.in_service.is_none() {
                // Idle server: immediate dequeue, by definition on time.
                self.start_task(now, server, entry, sched);
            } else {
                state.queue.push(entry);
            }
        }
        self.targets_scratch = targets;
        self.services_scratch = services;
    }

    fn start_task(
        &mut self,
        now: SimTime,
        server: u32,
        entry: QueuedTask,
        sched: &mut Scheduler<Ev>,
    ) {
        let missed = now > entry.deadline;
        self.report.load.task_completed(missed);
        if let Some(win) = &mut self.admission_window {
            win.record(now, missed);
        }
        let waited = now.saturating_since(entry.enqueued_at);
        let query = self.tasks[entry.task_id as usize].query;
        if self.queries[query as usize].record {
            self.report.pre_dequeue.record(waited);
        }
        let task_id = entry.task_id as u32;
        self.servers[server as usize].in_service = Some(task_id);
        let service = self.tasks[task_id as usize].service;
        sched.schedule_in(now, service, Ev::Finish(server));
    }

    fn finish_task(&mut self, now: SimTime, server: u32, sched: &mut Scheduler<Ev>) {
        let task_id = self.servers[server as usize]
            .in_service
            .take()
            .expect("finish event implies a task in service");
        let task = &self.tasks[task_id as usize];
        self.report.load.record_busy(task.service);
        self.report.busy_by_server[server as usize] += task.service;
        self.estimator
            .record_post_queuing(server as usize, task.service);

        // Work conservation: the freed server pulls its next task *before*
        // any successor query is issued, so a chained query cannot jump the
        // queue (and cannot double-start the server).
        let query_id = task.query;
        if let Some(next) = self.servers[server as usize].queue.pop() {
            self.start_task(now, server, next, sched);
        }

        // Query bookkeeping.
        let query = &mut self.queries[query_id as usize];
        query.outstanding -= 1;
        if query.outstanding == 0 {
            let latency = now.saturating_since(query.started_at);
            let class = query.class;
            let fanout = query.fanout;
            let record = query.record;
            let request = query.request as usize;
            if record {
                self.report
                    .query_latency_by_class
                    .entry(class)
                    .or_default()
                    .record(latency);
                self.report
                    .query_latency_by_type
                    .entry(QueryTypeKey { class, fanout })
                    .or_default()
                    .record(latency);
                self.report.completed_queries += 1;
            }
            // Sequential request chaining (Fig. 1): issue the next query.
            self.request_progress[request] += 1;
            let req_input = &self.input.requests[request];
            if self.request_progress[request] < req_input.queries.len() {
                self.issue_query(now, request, sched);
            } else if req_input.queries.len() > 1 {
                let req_latency = now.saturating_since(self.request_started[request]);
                let first_class = req_input.queries[0].class;
                self.report
                    .request_latency_by_class
                    .entry(first_class)
                    .or_default()
                    .record(req_latency);
            }
        }
    }
}

impl Simulation for ClusterSim {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Arrive(i) => {
                // Chain the next arrival (requests are pre-sorted).
                if i + 1 < self.input.requests.len() {
                    let t = self.input.requests[i + 1].arrival;
                    sched.schedule_at(t.max(now), Ev::Arrive(i + 1));
                }
                self.request_started[i] = now;
                self.issue_query(now, i, sched);
            }
            Ev::Finish(server) => self.finish_task(now, server, sched),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AdmissionConfig, ClassSpec, ClusterSpec, RequestInput};
    use tailguard_dist::Deterministic;
    use tailguard_policy::Policy;
    use tailguard_workload::{ArrivalProcess, FanoutDist, QueryMix, Trace};

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis_f64(v)
    }

    fn det_cluster(n: usize, service_ms: f64) -> ClusterSpec {
        ClusterSpec::homogeneous(n, Deterministic::new(service_ms))
    }

    fn one_query_input(arrivals_ms: &[u64], class: u8, fanout: u32) -> SimInput {
        SimInput {
            requests: arrivals_ms
                .iter()
                .map(|&t| RequestInput {
                    arrival: SimTime::from_millis(t),
                    queries: vec![QuerySpec::new(class, fanout)],
                })
                .collect(),
        }
    }

    #[test]
    fn single_query_latency_is_service_time_when_idle() {
        let cfg = SimConfig::new(
            det_cluster(4, 2.0),
            vec![ClassSpec::p99(ms(10.0))],
            Policy::Fifo,
        )
        .with_warmup(0);
        let input = one_query_input(&[0], 0, 4);
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.completed_queries, 1);
        // All four tasks run in parallel on idle servers: latency = 2ms.
        assert_eq!(report.class_tail(0, 0.99), ms(2.0));
        assert_eq!(report.deadline_miss_ratio(), 0.0);
    }

    #[test]
    fn queueing_serializes_on_one_server() {
        // Two fanout-1 queries arrive together on a 1-server cluster.
        let cfg = SimConfig::new(
            det_cluster(1, 3.0),
            vec![ClassSpec::p99(ms(100.0))],
            Policy::Fifo,
        )
        .with_warmup(0);
        let input = one_query_input(&[0, 0], 0, 1);
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.completed_queries, 2);
        // Latencies 3ms and 6ms → p99 = 6ms, median 3ms.
        assert_eq!(report.class_tail(0, 0.99), ms(6.0));
        assert_eq!(report.class_tail(0, 0.5), ms(3.0));
        // The second task waited 3ms.
        assert_eq!(report.pre_dequeue.percentile(1.0), ms(3.0));
    }

    #[test]
    fn work_conservation_no_idle_with_backlog() {
        // Many queries on a small deterministic cluster: total busy time
        // must equal tasks × service.
        let cfg = SimConfig::new(
            det_cluster(2, 1.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);
        let arrivals: Vec<u64> = (0..100).collect();
        let input = one_query_input(&arrivals, 0, 2);
        let report = run_simulation(&cfg, &input);
        let busy_ms = report.accepted_load() * report.elapsed.as_millis_f64() * 2.0;
        assert!((busy_ms - 200.0).abs() < 1e-6, "busy {busy_ms}");
    }

    #[test]
    fn deterministic_across_runs_and_policies_share_work() {
        let trace = Trace::generate(
            "d",
            &ArrivalProcess::poisson(1.0),
            &QueryMix::single(FanoutDist::paper_mix()),
            2_000,
            3,
        );
        let input = SimInput::from_trace(&trace);
        let base = SimConfig::new(
            ClusterSpec::homogeneous(
                100,
                tailguard_workload::TailbenchWorkload::Masstree.service_dist(),
            ),
            vec![ClassSpec::p99(ms(1.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);

        let mut a = run_simulation(&base, &input);
        let mut b = run_simulation(&base, &input);
        assert_eq!(a.class_tail(0, 0.99), b.class_tail(0, 0.99));
        assert_eq!(a.completed_queries, b.completed_queries);

        // Different policy, same total work (same draws).
        let fifo = run_simulation(&base.clone().with_policy(Policy::Fifo), &input);
        let work_a = a.accepted_load() * a.elapsed.as_millis_f64();
        let work_f = fifo.accepted_load() * fifo.elapsed.as_millis_f64();
        assert!((work_a - work_f).abs() < 1e-6);
    }

    #[test]
    fn warmup_discards_prefix() {
        let cfg = SimConfig::new(
            det_cluster(1, 1.0),
            vec![ClassSpec::p99(ms(100.0))],
            Policy::Fifo,
        )
        .with_warmup(5);
        let input = one_query_input(&[0, 10, 20, 30, 40, 50, 60], 0, 1);
        let report = run_simulation(&cfg, &input);
        assert_eq!(report.completed_queries, 2); // 7 issued − 5 warm-up
    }

    #[test]
    fn edf_reorders_for_tight_deadline() {
        // One server busy; a loose-deadline task queued, then a tight one.
        // TF-EDF must serve the tight one first; FIFO must not.
        let cluster = det_cluster(1, 10.0);
        let classes = vec![ClassSpec::p99(ms(1000.0)), ClassSpec::p99(ms(12.0))];
        let input = SimInput {
            requests: vec![
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec::new(0, 1)], // occupies the server
                },
                RequestInput {
                    arrival: SimTime::from_millis(1),
                    queries: vec![QuerySpec::new(0, 1)], // loose
                },
                RequestInput {
                    arrival: SimTime::from_millis(2),
                    queries: vec![QuerySpec::new(1, 1)], // tight
                },
            ],
        };
        let run = |policy: Policy| {
            let cfg = SimConfig::new(cluster.clone(), classes.clone(), policy).with_warmup(0);
            let mut r = run_simulation(&cfg, &input);
            (
                r.class_tail(0, 1.0).as_millis_f64(),
                r.class_tail(1, 1.0).as_millis_f64(),
            )
        };
        let (_, tight_fifo) = run(Policy::Fifo);
        let (_, tight_edf) = run(Policy::TfEdf);
        assert!(
            tight_edf < tight_fifo,
            "EDF must prioritize the tight class: {tight_edf} vs {tight_fifo}"
        );
    }

    #[test]
    fn priq_prefers_class_zero() {
        let cluster = det_cluster(1, 10.0);
        let classes = vec![ClassSpec::p99(ms(1000.0)), ClassSpec::p99(ms(1000.0))];
        let input = SimInput {
            requests: vec![
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec::new(1, 1)],
                },
                RequestInput {
                    arrival: SimTime::from_millis(1),
                    queries: vec![QuerySpec::new(1, 1)],
                },
                RequestInput {
                    arrival: SimTime::from_millis(2),
                    queries: vec![QuerySpec::new(0, 1)],
                },
            ],
        };
        let cfg = SimConfig::new(cluster, classes, Policy::Priq).with_warmup(0);
        let mut r = run_simulation(&cfg, &input);
        // Class 0 arrived last but jumps the queued class-1 task:
        // finishes at 20ms (latency 18), class-1 queued finishes at 30 (29).
        assert_eq!(r.class_tail(0, 1.0), ms(18.0));
        assert_eq!(r.class_tail(1, 1.0), ms(29.0));
    }

    #[test]
    fn admission_control_rejects_under_overload() {
        // Overload a single slow server; with a tight threshold the
        // controller must start rejecting queries.
        let cfg = SimConfig::new(
            det_cluster(1, 5.0),
            vec![ClassSpec::p99(ms(6.0))],
            Policy::TfEdf,
        )
        .with_admission(
            AdmissionConfig::new(SimDuration::from_millis(100), 0.05).with_min_samples(5),
        )
        .with_warmup(0);
        let arrivals: Vec<u64> = (0..200).collect(); // 1/ms vs capacity 0.2/ms
        let input = one_query_input(&arrivals, 0, 1);
        let report = run_simulation(&cfg, &input);
        assert!(
            report.rejected_queries > 80,
            "rejected only {}",
            report.rejected_queries
        );
        assert!(report.rejected_load() > 0.0);
        assert!(report.offered_load() > report.accepted_load());
    }

    #[test]
    fn multi_query_requests_run_sequentially() {
        // A 3-query request on an idle cluster: request latency = 3 × 2ms.
        let cfg = SimConfig::new(
            det_cluster(2, 2.0),
            vec![ClassSpec::p99(ms(100.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);
        let input = SimInput {
            requests: vec![RequestInput {
                arrival: SimTime::ZERO,
                queries: vec![
                    QuerySpec::new(0, 2),
                    QuerySpec::new(0, 2),
                    QuerySpec::new(0, 2),
                ],
            }],
        };
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.completed_queries, 3);
        let req = report
            .request_latency_by_class
            .get_mut(&0)
            .expect("request latency recorded");
        assert_eq!(req.percentile(1.0), ms(6.0));
    }

    #[test]
    fn chained_query_cannot_double_start_a_server() {
        // Regression: a request's successor query issued at completion time
        // must not start on a server that still has queued work, nor
        // double-occupy the server that just freed up.
        let cfg = SimConfig::new(
            det_cluster(1, 4.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);
        let input = SimInput {
            requests: vec![
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec::new(0, 1), QuerySpec::new(0, 1)],
                },
                RequestInput {
                    arrival: SimTime::from_millis(1),
                    queries: vec![QuerySpec::new(0, 1)],
                },
            ],
        };
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.completed_queries, 3);
        // Serialized on one server: busy 12ms total, queued task (arrived
        // at 1ms) runs second (finishes at 8ms, latency 7ms), chained query
        // runs last (finishes at 12ms, its own latency 12-4=8ms).
        assert_eq!(report.class_tail(0, 1.0), ms(8.0));
        let req = report
            .request_latency_by_class
            .get_mut(&0)
            .expect("request recorded");
        assert_eq!(req.percentile(1.0), ms(12.0));
    }

    #[test]
    fn explicit_placement_is_honored() {
        // Pin both tasks to server 0: they serialize (latency 2·service).
        let cfg = SimConfig::new(
            det_cluster(4, 2.0),
            vec![ClassSpec::p99(ms(100.0))],
            Policy::Fifo,
        )
        .with_warmup(0);
        let input = SimInput {
            requests: vec![RequestInput {
                arrival: SimTime::ZERO,
                queries: vec![QuerySpec {
                    class: 0,
                    fanout: 2,
                    servers: Some(vec![0, 0]),
                    budget_override: None,
                    task_budgets: None,
                }],
            }],
        };
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.class_tail(0, 1.0), ms(4.0));
    }

    #[test]
    fn budget_override_controls_deadline() {
        // Zero budget → any queued task is late; generous budget → on time.
        let mk_input = |budget: SimDuration| SimInput {
            requests: vec![
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec::new(0, 1)],
                },
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec {
                        class: 0,
                        fanout: 1,
                        servers: None,
                        budget_override: Some(budget),
                        task_budgets: None,
                    }],
                },
            ],
        };
        let cfg = SimConfig::new(
            det_cluster(1, 5.0),
            vec![ClassSpec::p99(ms(100.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);
        let tight = run_simulation(&cfg, &mk_input(SimDuration::ZERO));
        assert!(tight.deadline_miss_ratio() > 0.0);
        let loose = run_simulation(&cfg, &mk_input(ms(50.0)));
        assert_eq!(loose.deadline_miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "fanout 5 exceeds cluster size 2")]
    fn oversized_fanout_panics() {
        let cfg = SimConfig::new(
            det_cluster(2, 1.0),
            vec![ClassSpec::p99(ms(10.0))],
            Policy::Fifo,
        );
        let input = one_query_input(&[0], 0, 5);
        let _ = run_simulation(&cfg, &input);
    }

    #[test]
    fn per_task_budgets_order_the_queue() {
        // Footnote-4 ablation hook: two tasks of one query pinned to one
        // busy server, with per-task budgets reversing arrival order.
        let cfg = SimConfig::new(
            det_cluster(1, 5.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::TfEdf,
        )
        .with_warmup(0);
        let input = SimInput {
            requests: vec![
                RequestInput {
                    arrival: SimTime::ZERO,
                    queries: vec![QuerySpec::new(0, 1)], // occupies the server
                },
                RequestInput {
                    arrival: SimTime::from_millis(1),
                    queries: vec![QuerySpec {
                        class: 0,
                        fanout: 2,
                        servers: Some(vec![0, 0]),
                        budget_override: None,
                        // Second task far more urgent than the first.
                        task_budgets: Some(vec![ms(100.0), ms(1.0)]),
                    }],
                },
            ],
        };
        let report = run_simulation(&cfg, &input);
        // Pre-dequeue times: urgent task waited 4ms (served first at t=5),
        // lax task waited 9ms (served at t=10).
        let mut pre = report.pre_dequeue.clone();
        assert_eq!(pre.percentile(1.0), ms(9.0));
        let sorted = pre.sorted_samples().to_vec();
        assert_eq!(sorted[1], ms(4.0).as_nanos());
    }

    #[test]
    #[should_panic(expected = "task budget count must equal fanout")]
    fn per_task_budgets_must_match_fanout() {
        let cfg = SimConfig::new(
            det_cluster(2, 1.0),
            vec![ClassSpec::p99(ms(10.0))],
            Policy::TfEdf,
        );
        let input = SimInput {
            requests: vec![RequestInput {
                arrival: SimTime::ZERO,
                queries: vec![QuerySpec {
                    class: 0,
                    fanout: 2,
                    servers: None,
                    budget_override: None,
                    task_budgets: Some(vec![ms(1.0)]),
                }],
            }],
        };
        let _ = run_simulation(&cfg, &input);
    }

    #[test]
    fn slowdown_multiplies_service_after_cutover() {
        use crate::spec::Slowdown;
        let cfg = SimConfig::new(
            det_cluster(1, 2.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::Fifo,
        )
        .with_warmup(0)
        .with_slowdown(Slowdown::new(SimTime::from_millis(5), 0..1, 3.0));
        // One query before the cutover (latency 2ms), one after (6ms).
        let input = one_query_input(&[0, 10], 0, 1);
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.class_tail(0, 0.4), ms(2.0));
        assert_eq!(report.class_tail(0, 1.0), ms(6.0));
    }

    #[test]
    fn slowdown_only_affects_named_servers() {
        use crate::spec::Slowdown;
        let cfg = SimConfig::new(
            det_cluster(2, 2.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::Fifo,
        )
        .with_warmup(0)
        .with_slowdown(Slowdown::new(SimTime::ZERO, 1..2, 5.0));
        // Fanout 2: one task per server. Slow server dominates: 10ms.
        let input = one_query_input(&[0], 0, 2);
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.class_tail(0, 1.0), ms(10.0));
        // Fast server's busy time stays 2ms.
        assert_eq!(report.busy_by_server[0], ms(2.0));
        assert_eq!(report.busy_by_server[1], ms(10.0));
    }

    #[test]
    fn slowdowns_compose_multiplicatively() {
        use crate::spec::Slowdown;
        let cfg = SimConfig::new(
            det_cluster(1, 1.0),
            vec![ClassSpec::p99(ms(1000.0))],
            Policy::Fifo,
        )
        .with_warmup(0)
        .with_slowdown(Slowdown::new(SimTime::ZERO, 0..1, 2.0))
        .with_slowdown(Slowdown::new(SimTime::ZERO, 0..1, 3.0));
        let input = one_query_input(&[0], 0, 1);
        let mut report = run_simulation(&cfg, &input);
        assert_eq!(report.class_tail(0, 1.0), ms(6.0));
    }

    #[test]
    fn empty_input_is_benign() {
        let cfg = SimConfig::new(
            det_cluster(2, 1.0),
            vec![ClassSpec::p99(ms(10.0))],
            Policy::Fifo,
        );
        let report = run_simulation(&cfg, &SimInput::default());
        assert_eq!(report.completed_queries, 0);
        assert_eq!(report.elapsed, SimTime::ZERO);
    }
}

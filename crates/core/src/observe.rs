//! Observed simulation runs: [`run_simulation`](crate::run_simulation)
//! with the flight recorder on.
//!
//! [`run_simulation_observed`] drives the exact same event loop as the
//! plain entry point, but installs a bounded [`BinaryRecorder`] sink as
//! the handler's [`TraceSink`](tailguard_sched::TraceSink) — events are
//! encoded into a fixed-width binary layout on the hot path and decoded
//! back only here, at analysis time — samples [`SimSnapshot`]s at a
//! configurable virtual-time cadence, replays the decoded stream through
//! the [`SloMonitor`], and distills everything into a [`Registry`] — the
//! one place the CLI `--json` output, the Prometheus exposition, and the
//! JSON snapshot dumps all read from.
//!
//! The observed run is still fully deterministic in `(config.seed,
//! input)`: tracing draws no randomness and snapshot events touch no
//! handler state. Relative to the unobserved run only `events_processed`
//! differs (snapshot events are engine events too); every latency,
//! load, and count in the report is identical.

use crate::cluster::{run_with_observer, ObserverSetup};
use crate::report::SimReport;
use crate::spec::{SimConfig, SimInput};
use serde::Serialize;
use tailguard_obs::{BinaryRecorder, Registry, SamplerConfig, SloConfig, SloMonitor, SloSnapshot};
use tailguard_simcore::{SimDuration, SimTime};

/// Default [`BinaryRecorder`] capacity: at 51 bytes per encoded event
/// this bounds the recording near 51 MiB while still holding every event
/// of the golden-pin-sized runs (10 000 queries ≈ 60 000 events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// Always-on flight-recorder capacity: the last 16 384 events (~817 KiB
/// encoded), sized so ring, staging blocks, and recycled allocations stay
/// cache-resident. Recording overhead is dominated by *retention volume*,
/// not encoding — filling [`DEFAULT_RING_CAPACITY`]'s tens of megabytes
/// first-touches cold pages and roughly doubles the recording cost, while
/// a ring at this bound recycles warm blocks and stays within the ≤15%
/// always-on budget (`BENCH_obs.json`, `binrecorder` vs
/// `binrecorder_fullring`). Use the full capacity when the analysis needs
/// the whole run (`tailguard trace`, `sim --json`); use this bound when
/// tracing stays on and only the recent window matters.
pub const FLIGHT_RING_CAPACITY: usize = 1 << 14;

/// One sample of the cluster's state at a point in virtual time.
///
/// Instantaneous fields (`queued_tasks`, `servers_busy`) describe the
/// moment; the rest are the handler's cumulative counters, so deltas
/// between consecutive snapshots give per-interval rates.
#[derive(Debug, Clone, Serialize)]
pub struct SimSnapshot {
    /// Virtual time of the sample in nanoseconds.
    pub at_ns: u64,
    /// Tasks queued across all per-server queues (not yet in service).
    pub queued_tasks: u64,
    /// Servers with a task in service.
    pub servers_busy: u64,
    /// Cumulative queries offered to admission control.
    pub queries_offered: u64,
    /// Cumulative queries admitted.
    pub queries_accepted: u64,
    /// Cumulative queries rejected.
    pub queries_rejected: u64,
    /// Cumulative task attempts moved into service.
    pub tasks_dispatched: u64,
    /// Cumulative task attempts that finished service.
    pub tasks_completed: u64,
    /// Cumulative dequeue-time deadline misses (§III.C's signal).
    pub deadline_misses: u64,
    /// Cumulative deadline-miss ratio over dequeue outcomes.
    pub deadline_miss_ratio: f64,
}

/// Tuning knobs for [`run_simulation_observed`].
#[derive(Debug, Clone)]
pub struct ObsOptions {
    /// Most recent events the [`BinaryRecorder`] retains
    /// ([`DEFAULT_RING_CAPACITY`] by default).
    pub ring_capacity: usize,
    /// Virtual-time interval between [`SimSnapshot`]s. `None` picks the
    /// admission window when one is configured (so the sampling cadence
    /// matches the controller's decision cadence) and 10 ms otherwise.
    pub snapshot_every: Option<SimDuration>,
    /// Tail-aware sampling in front of the recorder: interesting queries
    /// (misses, hedges, retries, losses, reclaims, slow dequeues) are
    /// retained whole, healthy ones at the configured per-mille rate.
    /// `None` (the default) records every event.
    pub sampler: Option<SamplerConfig>,
    /// SLO-monitor windowing. `None` (the default) uses the default
    /// windows with the attainment target derived from the class specs
    /// (the strictest — lowest — percentile across classes).
    pub slo: Option<SloConfig>,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            ring_capacity: DEFAULT_RING_CAPACITY,
            snapshot_every: None,
            sampler: None,
            slo: None,
        }
    }
}

/// A completed observed run: the ordinary report plus everything the
/// observability layer captured alongside it.
#[derive(Debug)]
pub struct ObservedRun {
    /// The same measurements an unobserved [`crate::run_simulation`] of
    /// this config/input produces (only `events_processed` differs, since
    /// snapshot sampling adds engine events).
    pub report: SimReport,
    /// The binary flight recorder with the retained lifecycle events —
    /// feed [`BinaryRecorder::events`] (decoded on demand) to
    /// `tailguard_obs::build_timelines` or the exporters.
    pub recorder: BinaryRecorder,
    /// Lifecycle counters, per-phase latency histograms, estimator and
    /// mitigation counters, SLO attainment/burn-rate metrics, and the
    /// queue-depth/miss-ratio series, ready for
    /// `Registry::prometheus_text` or `Registry::to_json`.
    pub registry: Registry,
    /// Virtual-time samples, oldest first; never empty (a final snapshot
    /// is always taken at the last event time).
    pub snapshots: Vec<SimSnapshot>,
    /// The sealed SLO monitor's state: per-class attainment, burn rates,
    /// windowed slack percentiles, and every alert raised.
    pub slo: SloSnapshot,
}

impl ObservedRun {
    /// The snapshots as pretty-printed JSON (an array of objects).
    pub fn snapshots_json(&self) -> String {
        // tg-lint: allow(unwrap-in-lib) -- pure in-memory serialization of plain structs cannot fail
        serde_json::to_string_pretty(&self.snapshots).expect("snapshots serialize")
    }
}

/// The snapshot cadence when [`ObsOptions::snapshot_every`] is `None`:
/// the admission window if admission control is on, else 10 ms.
fn default_snapshot_interval(config: &SimConfig) -> SimDuration {
    config
        .admission
        .map_or_else(|| SimDuration::from_millis(10), |a| a.window)
}

/// The SLO-monitor config when [`ObsOptions::slo`] is `None`: default
/// windows, with the attainment target taken from the strictest (lowest)
/// class percentile so no configured class under-alerts.
fn default_slo_config(config: &SimConfig) -> SloConfig {
    let target = config
        .classes
        .iter()
        .map(|c| c.percentile)
        .fold(f64::NAN, f64::min);
    SloConfig {
        target: if target.is_nan() { 0.99 } else { target },
        ..SloConfig::default()
    }
}

/// Runs one simulation with the flight recorder on.
///
/// Behaves exactly like [`crate::run_simulation`] — same panics, same
/// determinism guarantee, same measurements — and additionally returns the
/// recorded event stream, the snapshot series, and the populated metrics
/// [`Registry`].
///
/// # Example
///
/// ```
/// use tailguard::{run_simulation_observed, ClassSpec, ClusterSpec, ObsOptions, SimConfig, SimInput};
/// use tailguard_dist::Deterministic;
/// use tailguard_policy::Policy;
/// use tailguard_simcore::SimDuration;
/// use tailguard_workload::{ArrivalProcess, FanoutDist, QueryMix, Trace};
///
/// let trace = Trace::generate(
///     "obs",
///     &ArrivalProcess::poisson(0.5),
///     &QueryMix::single(FanoutDist::paper_mix()),
///     500,
///     7,
/// );
/// let cfg = SimConfig::new(
///     ClusterSpec::homogeneous(100, Deterministic::new(0.5)),
///     vec![ClassSpec::p99(SimDuration::from_millis_f64(5.0))],
///     Policy::TfEdf,
/// ).with_warmup(0);
/// let run = run_simulation_observed(&cfg, &SimInput::from_trace(&trace), &ObsOptions::default());
/// assert!(!run.snapshots.is_empty());
/// assert!(run.registry.counter("tailguard_queries_admitted_total").unwrap_or(0) > 0);
/// ```
pub fn run_simulation_observed(
    config: &SimConfig,
    input: &SimInput,
    opts: &ObsOptions,
) -> ObservedRun {
    let recorder = BinaryRecorder::with_capacity(opts.ring_capacity);
    let every = opts
        .snapshot_every
        .unwrap_or_else(|| default_snapshot_interval(config));
    let sink = match opts.sampler {
        Some(sampler) => recorder.sink_sampled(sampler),
        None => recorder.sink(),
    };
    let raw = run_with_observer(
        config,
        input,
        Some(ObserverSetup {
            sink,
            snapshot_every: Some(every),
        }),
    );
    // Decode once, at analysis time; the hot path only saw fixed-width
    // binary appends.
    let events = recorder.events();
    let mut slo_monitor = SloMonitor::new(opts.slo.unwrap_or_else(|| default_slo_config(config)));
    slo_monitor.ingest(&events);
    slo_monitor.finish();
    let mut registry = Registry::new();
    registry.ingest_events(&events);
    registry.ingest_robustness(&raw.report.robustness);
    registry.ingest_lifecycle(&raw.report.lifecycle);
    slo_monitor.publish(&mut registry);
    // Health and adaptive-estimator metrics exist exactly when their
    // features are configured, so feature-off registries are unchanged.
    if !raw.report.server_health.is_empty() {
        for (server, score) in raw.report.server_health.iter().enumerate() {
            registry.gauge_set(
                &format!("tailguard_server_health{{server=\"{server}\"}}"),
                "Per-server EWMA health score (observed service time, seconds)",
                *score,
            );
        }
        registry.counter_set(
            "tailguard_ejections_total",
            "Servers ejected from dispatch by the health tracker",
            raw.report.health.ejections,
        );
        registry.counter_set(
            "tailguard_readmissions_total",
            "Ejected servers readmitted after recovering",
            raw.report.health.readmissions,
        );
        registry.counter_set(
            "tailguard_health_probes_total",
            "Tasks sent to ejected servers as recovery probes",
            raw.report.health.probes,
        );
        registry.counter_set(
            "tailguard_health_rerouted_total",
            "Arrivals diverted away from ejected servers",
            raw.report.health.rerouted_tasks,
        );
    }
    if config.adaptive.is_some() {
        registry.counter_set(
            "tailguard_estimator_window_rolls_total",
            "Adaptive estimator window rolls (decay + budget-table rebuild)",
            raw.report.estimator_window_rolls,
        );
    }
    registry.counter_set(
        "tailguard_estimator_budget_lookups_total",
        "Budget-table lookups while stamping deadlines (Eq. 6)",
        raw.budget_lookups,
    );
    registry.counter_set(
        "tailguard_estimator_refreshes_total",
        "Online budget-table rebuilds from refreshed CDFs (§III.B.2)",
        raw.estimator_refreshes,
    );
    registry.gauge_set(
        "tailguard_estimator_cached_budgets",
        "Distinct (class, fanout) budgets currently cached",
        raw.cached_budgets as f64,
    );
    registry.counter_set(
        "tailguard_run_queries_completed_total",
        "Recorded (post-warm-up) queries completed",
        raw.report.completed_queries,
    );
    registry.counter_set(
        "tailguard_run_events_processed_total",
        "Discrete events the engine processed (snapshots included)",
        raw.report.events_processed,
    );
    registry.gauge_set(
        "tailguard_run_elapsed_ms",
        "Virtual time at the last processed event",
        raw.report.elapsed.as_millis_f64(),
    );
    registry.gauge_set(
        "tailguard_run_accepted_load",
        "Executed busy time over cluster capacity",
        raw.report.accepted_load(),
    );
    registry.gauge_set(
        "tailguard_run_deadline_miss_ratio",
        "Final dequeue-time deadline-miss ratio",
        raw.report.deadline_miss_ratio(),
    );
    if recorder.dropped() > 0 {
        registry.counter_set(
            "tailguard_trace_events_dropped_total",
            "Events evicted by the ring recorder's capacity bound",
            recorder.dropped(),
        );
    }
    if recorder.sampled_out() > 0 {
        registry.counter_set(
            "tailguard_trace_events_sampled_out_total",
            "Healthy-query events discarded by tail-aware sampling",
            recorder.sampled_out(),
        );
    }
    for s in &raw.snapshots {
        let at = SimTime::from_nanos(s.at_ns);
        registry.series_push(
            "tailguard_queue_depth",
            "Tasks queued across all per-server queues",
            at,
            s.queued_tasks as f64,
        );
        registry.series_push(
            "tailguard_servers_busy",
            "Servers with a task in service",
            at,
            s.servers_busy as f64,
        );
        registry.series_push(
            "tailguard_deadline_miss_ratio",
            "Cumulative dequeue-time deadline-miss ratio",
            at,
            s.deadline_miss_ratio,
        );
    }
    ObservedRun {
        report: raw.report,
        recorder,
        registry,
        snapshots: raw.snapshots,
        slo: slo_monitor.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_simulation;
    use crate::spec::QuerySpec;
    use crate::spec::{AdmissionConfig, ClassSpec, ClusterSpec, RequestInput};
    use tailguard_dist::Deterministic;
    use tailguard_obs::build_timelines;
    use tailguard_policy::Policy;
    use tailguard_workload::{ArrivalProcess, FanoutDist, QueryMix, Trace};

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis_f64(v)
    }

    fn small_config() -> SimConfig {
        SimConfig::new(
            ClusterSpec::homogeneous(8, Deterministic::new(1.0)),
            vec![ClassSpec::p99(ms(20.0))],
            Policy::TfEdf,
        )
        .with_warmup(0)
    }

    fn small_input(queries: usize) -> SimInput {
        let trace = Trace::generate(
            "observe",
            &ArrivalProcess::poisson(1.0),
            &QueryMix::single(FanoutDist::new(vec![(1, 0.4), (2, 0.3), (4, 0.3)])),
            queries,
            11,
        );
        SimInput::from_trace(&trace)
    }

    #[test]
    fn observed_report_matches_unobserved_except_event_count() {
        let cfg = small_config();
        let input = small_input(300);
        let mut plain = run_simulation(&cfg, &input);
        let observed = run_simulation_observed(&cfg, &input, &ObsOptions::default());
        let mut obs_report = observed.report;
        assert_eq!(plain.completed_queries, obs_report.completed_queries);
        assert_eq!(plain.rejected_queries, obs_report.rejected_queries);
        assert_eq!(plain.elapsed, obs_report.elapsed);
        assert_eq!(plain.class_tail(0, 0.99), obs_report.class_tail(0, 0.99));
        assert_eq!(
            plain.load.deadline_miss_count(),
            obs_report.load.deadline_miss_count()
        );
        // Snapshot sampling adds events but never removes any.
        assert!(obs_report.events_processed >= plain.events_processed);
    }

    #[test]
    fn observed_run_emits_snapshots_and_metrics() {
        let cfg = small_config();
        let input = small_input(300);
        let run = run_simulation_observed(
            &cfg,
            &input,
            &ObsOptions {
                snapshot_every: Some(ms(5.0)),
                ..ObsOptions::default()
            },
        );
        assert!(run.snapshots.len() > 1, "periodic sampling ran");
        // Snapshots are time-ordered and cumulative counters are monotone.
        for w in run.snapshots.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
            assert!(w[0].tasks_completed <= w[1].tasks_completed);
        }
        let last = run.snapshots.last().unwrap();
        assert_eq!(last.at_ns, run.report.elapsed.as_nanos());
        assert_eq!(
            run.registry.counter("tailguard_queries_admitted_total"),
            Some(run.report.load.queries_accepted_count())
        );
        assert!(run
            .registry
            .counter("tailguard_estimator_budget_lookups_total")
            .is_some());
        assert!(run.registry.series("tailguard_queue_depth").is_some());
        let json = run.snapshots_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v.as_array().unwrap().len() == run.snapshots.len());
    }

    #[test]
    fn empty_input_still_yields_one_snapshot() {
        let run = run_simulation_observed(
            &small_config(),
            &SimInput::default(),
            &ObsOptions::default(),
        );
        assert_eq!(run.snapshots.len(), 1);
        assert!(run.recorder.is_empty());
    }

    #[test]
    fn recorded_timelines_are_complete() {
        let cfg = small_config();
        let input = small_input(200);
        let run = run_simulation_observed(&cfg, &input, &ObsOptions::default());
        assert_eq!(run.recorder.dropped(), 0, "default capacity holds the run");
        let timelines = build_timelines(&run.recorder.events());
        assert_eq!(
            timelines.len() as u64,
            run.report.load.queries_accepted_count()
        );
        for tl in timelines.values() {
            assert!(tl.is_complete(), "query {} incomplete", tl.query);
            assert_eq!(tl.attempts.len(), tl.fanout as usize);
        }
    }

    #[test]
    fn admission_window_is_the_default_cadence() {
        let window = ms(25.0);
        let cfg =
            small_config().with_admission(AdmissionConfig::new(window, 0.5).with_min_samples(1000));
        assert_eq!(default_snapshot_interval(&cfg), window);
        assert_eq!(default_snapshot_interval(&small_config()), ms(10.0));
    }

    #[test]
    fn snapshot_sampling_resumes_after_idle_gaps() {
        // Two bursts separated by a long idle gap: sampling stops when the
        // cluster drains and re-arms on the next arrival.
        let cfg = SimConfig::new(
            ClusterSpec::homogeneous(1, Deterministic::new(2.0)),
            vec![ClassSpec::p99(ms(50.0))],
            Policy::Fifo,
        )
        .with_warmup(0);
        let input = SimInput {
            requests: [0u64, 1, 2, 1_000, 1_001]
                .iter()
                .map(|&t| RequestInput {
                    arrival: SimTime::from_millis(t),
                    queries: vec![QuerySpec::new(0, 1)],
                })
                .collect(),
        };
        let run = run_simulation_observed(
            &cfg,
            &input,
            &ObsOptions {
                snapshot_every: Some(ms(1.0)),
                ..ObsOptions::default()
            },
        );
        let times: Vec<u64> = run.snapshots.iter().map(|s| s.at_ns).collect();
        assert!(
            times
                .iter()
                .any(|&t| t > SimTime::from_millis(1_000).as_nanos()),
            "second burst sampled: {times:?}"
        );
        // The idle gap is not blanketed with useless samples: far fewer
        // snapshots than the gap would hold at the 1 ms cadence.
        assert!(
            run.snapshots.len() < 100,
            "idle gap oversampled: {} snapshots",
            run.snapshots.len()
        );
    }
}

//! Parallel experiment runner: fan `(scenario, policy, load, seed)` cells
//! out over worker threads, deterministically.
//!
//! The paper's evaluation is a grid of independent simulation cells (per
//! figure: policies × loads × seeds). Each cell is already deterministic in
//! its inputs ([`run_simulation`](crate::run_simulation) is pure in
//! `(config.seed, input)`), so the grid parallelizes embarrassingly —
//! provided results are reassembled in input order rather than completion
//! order.
//!
//! **Determinism contract.** Every function here returns *bit-identical*
//! results to its serial counterpart for the same inputs, regardless of
//! `jobs` and of thread scheduling: cells are tagged with their input index,
//! workers pull indices from a shared counter (work stealing), and results
//! land in an index-addressed slot vector. No RNG state is shared across
//! cells — each cell derives its streams from its own seed.
//!
//! `jobs = 1` (or a single cell) bypasses threading entirely and runs on
//! the caller's thread; `jobs = 0` is treated as 1.

use crate::maxload::{max_load, sweep_point, LoadPoint, MaxLoadOptions};
use crate::spec::Scenario;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tailguard_policy::Policy;

/// The number of worker threads to use by default: the machine's available
/// parallelism, or 1 when that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item on up to `jobs` scoped worker threads and
/// returns the results **in input order**.
///
/// Workers claim indices from a shared atomic counter, so long cells do not
/// stall short ones (work stealing at item granularity). `f` must be pure
/// in `(index, item)` for the determinism contract to hold; the function
/// itself guarantees only ordered reassembly.
///
/// # Panics
///
/// Propagates the first worker panic after all threads are joined.
///
/// # Example
///
/// ```
/// let squares = tailguard::run_indexed(&[1u64, 2, 3, 4], 8, |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn run_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // tg-lint: allow(panic-surface) -- guarded: the `break` above bounds `i < items.len()`
                let r = f(i, &items[i]);
                // tg-lint: allow(unwrap-in-lib) -- each slot is touched by exactly one claiming worker; a poisoned lock means that worker already panicked
                // tg-lint: allow(panic-surface) -- guarded: the `break` above bounds `i < items.len()`
                *slots[i].lock().expect("result slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                // tg-lint: allow(unwrap-in-lib) -- scope() already propagated any worker panic; the lock cannot be poisoned here
                .expect("result slot lock")
                // tg-lint: allow(unwrap-in-lib) -- fetch_add hands every index to exactly one worker, which always fills it
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Parallel version of [`sweep_loads`](crate::sweep_loads): measures every
/// load point concurrently on up to `jobs` threads.
///
/// Bit-identical to the serial sweep — both call the same per-point code,
/// and each point's simulation derives its RNG streams only from
/// `(scenario.seed, load)`.
pub fn sweep_loads_parallel(
    scenario: &Scenario,
    policy: Policy,
    loads: &[f64],
    opts: &MaxLoadOptions,
    jobs: usize,
) -> Vec<LoadPoint> {
    run_indexed(loads, jobs, |_, &load| {
        sweep_point(scenario, policy, load, opts)
    })
}

/// Runs [`max_load`] for several policies concurrently (one bisection per
/// worker — the per-figure pattern of Figs. 4–6, where every policy's
/// search is independent).
///
/// Returns `(policy, max_load)` pairs in the order of `policies`.
pub fn max_load_many(
    scenario: &Scenario,
    policies: &[Policy],
    opts: &MaxLoadOptions,
    jobs: usize,
) -> Vec<(Policy, f64)> {
    run_indexed(policies, jobs, |_, &policy| {
        (policy, max_load(scenario, policy, opts))
    })
}

/// Per-class tail statistics across replicates: sample mean and a 95 %
/// confidence half-width (normal approximation, `1.96·s/√n`; zero for a
/// single replicate).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStat {
    /// Mean of the per-replicate tail latencies, in ms.
    pub mean_ms: f64,
    /// 95 % confidence half-width around the mean, in ms.
    pub ci95_ms: f64,
}

/// The result of a multi-seed [`replicate`] run.
#[derive(Debug, Clone)]
pub struct Replication {
    /// The derived per-replicate seeds (split from the base seed).
    pub seeds: Vec<u64>,
    /// Per-replicate, per-class tail latency in ms
    /// (`per_seed_tails_ms[r][c]`).
    pub per_seed_tails_ms: Vec<Vec<f64>>,
    /// Mean ± CI per class, aggregated over replicates.
    pub tails: Vec<ClassStat>,
    /// Fraction of replicates in which every class met its SLO.
    pub meets_fraction: f64,
}

/// SplitMix64 — the standard seed-derivation mixer. Used to split one base
/// seed into independent per-replicate seeds without any shared RNG state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic seed sequence [`replicate`] derives from `base_seed`.
pub fn replicate_seeds(base_seed: u64, replicates: usize) -> Vec<u64> {
    let mut state = base_seed;
    (0..replicates).map(|_| splitmix64(&mut state)).collect()
}

/// Measures `(scenario, policy, load)` under `replicates` independent
/// seeds, in parallel, and aggregates per-class tails into mean ± 95 % CI.
///
/// Seeds are split deterministically from `scenario.seed` via SplitMix64,
/// so the full result — including the CI — is reproducible from the
/// scenario alone and independent of `jobs`.
///
/// # Panics
///
/// Panics when `replicates` is zero.
pub fn replicate(
    scenario: &Scenario,
    policy: Policy,
    load: f64,
    opts: &MaxLoadOptions,
    replicates: usize,
    jobs: usize,
) -> Replication {
    assert!(replicates > 0, "need at least one replicate");
    let seeds = replicate_seeds(scenario.seed, replicates);
    let classes = scenario.classes.len();
    let per_seed: Vec<(Vec<f64>, bool)> = run_indexed(&seeds, jobs, |_, &seed| {
        let mut s = scenario.clone();
        s.seed = seed;
        let mut report = crate::maxload::measure_at_load(&s, policy, load, opts);
        let tails: Vec<f64> = (0..classes)
            .map(|c| {
                report
                    // tg-lint: allow(lossy-cast, panic-surface) -- class list indexed by its own enumerate index
                    .class_tail(c as u8, s.classes[c].percentile)
                    .as_millis_f64()
            })
            .collect();
        let meets = report.meets_all_slos();
        (tails, meets)
    });
    let n = replicates as f64;
    let tails: Vec<ClassStat> = (0..classes)
        .map(|c| {
            // tg-lint: allow(panic-surface) -- per-seed tail vectors all have one entry per class by construction
            let xs: Vec<f64> = per_seed.iter().map(|(t, _)| t[c]).collect();
            let mean = xs.iter().sum::<f64>() / n;
            let ci95 = if replicates > 1 {
                let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
                1.96 * (var / n).sqrt()
            } else {
                0.0
            };
            ClassStat {
                mean_ms: mean,
                ci95_ms: ci95,
            }
        })
        .collect();
    let meets_fraction = per_seed.iter().filter(|(_, m)| *m).count() as f64 / n;
    Replication {
        seeds,
        per_seed_tails_ms: per_seed.into_iter().map(|(t, _)| t).collect(),
        tails,
        meets_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxload::sweep_loads;
    use crate::scenarios;
    use tailguard_workload::TailbenchWorkload;

    fn quick_opts() -> MaxLoadOptions {
        MaxLoadOptions {
            queries: 8_000,
            tolerance: 0.1,
            ..MaxLoadOptions::default()
        }
    }

    #[test]
    fn run_indexed_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 8, 64] {
            let out = run_indexed(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_indexed_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_indexed(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(run_indexed(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn run_indexed_zero_jobs_is_serial() {
        let out = run_indexed(&[1u32, 2, 3], 0, |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn parallel_sweep_matches_serial_bitwise() {
        let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
        let loads = [0.2, 0.4, 0.6];
        let opts = quick_opts();
        let serial = sweep_loads(&scenario, Policy::TfEdf, &loads, &opts);
        for jobs in [1, 2, 8] {
            let par = sweep_loads_parallel(&scenario, Policy::TfEdf, &loads, &opts, jobs);
            assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                assert_eq!(p.load, s.load);
                assert_eq!(p.tails_by_class, s.tails_by_class, "jobs={jobs}");
                assert_eq!(p.meets, s.meets);
                assert_eq!(p.miss_ratio, s.miss_ratio);
                assert_eq!(p.measured_load, s.measured_load);
            }
        }
    }

    #[test]
    fn max_load_many_matches_serial() {
        let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
        let opts = quick_opts();
        let policies = [Policy::TfEdf, Policy::Fifo];
        let many = max_load_many(&scenario, &policies, &opts, 4);
        for (policy, load) in many {
            assert_eq!(load, max_load(&scenario, policy, &opts));
        }
    }

    #[test]
    fn replicate_is_deterministic_across_jobs() {
        let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
        let opts = quick_opts();
        let a = replicate(&scenario, Policy::TfEdf, 0.3, &opts, 4, 1);
        let b = replicate(&scenario, Policy::TfEdf, 0.3, &opts, 4, 8);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.per_seed_tails_ms, b.per_seed_tails_ms);
        assert_eq!(a.tails, b.tails);
        assert_eq!(a.meets_fraction, b.meets_fraction);
    }

    #[test]
    fn replicate_ci_shrinks_sanely() {
        let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
        let opts = quick_opts();
        let r = replicate(&scenario, Policy::TfEdf, 0.3, &opts, 3, 2);
        assert_eq!(r.seeds.len(), 3);
        assert_eq!(r.per_seed_tails_ms.len(), 3);
        for stat in &r.tails {
            assert!(stat.mean_ms > 0.0);
            assert!(stat.ci95_ms >= 0.0);
            // Replicate tails at the same load agree to within a wide band.
            assert!(stat.ci95_ms < stat.mean_ms, "{stat:?}");
        }
        // Single replicate: CI must be exactly zero.
        let one = replicate(&scenario, Policy::TfEdf, 0.3, &opts, 1, 1);
        assert_eq!(one.tails[0].ci95_ms, 0.0);
        assert!((0.0..=1.0).contains(&one.meets_fraction));
    }

    #[test]
    fn replicate_seeds_are_distinct_and_stable() {
        let a = replicate_seeds(42, 8);
        let b = replicate_seeds(42, 8);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "seed collisions in {a:?}");
        assert_ne!(replicate_seeds(43, 8), a);
    }

    #[test]
    #[should_panic(expected = "need at least one replicate")]
    fn replicate_rejects_zero() {
        let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
        let _ = replicate(&scenario, Policy::Fifo, 0.3, &quick_opts(), 0, 1);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}

//! Results of a simulation run.

use crate::spec::ClassSpec;
use std::collections::BTreeMap;
use std::fmt;
use tailguard_metrics::{LatencyReservoir, LoadStats};
use tailguard_policy::Policy;
use tailguard_sched::{HealthStats, LifecycleStats, RobustnessStats};
use tailguard_simcore::{SimDuration, SimTime};

// The per-type key lives in the shared scheduling core (which does the
// per-type accounting); re-exported so `tailguard::QueryTypeKey` keeps
// working.
pub use tailguard_sched::QueryTypeKey;

/// Everything measured during one simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// The policy that produced this report.
    pub policy: Policy,
    /// The class SLOs the run was configured with.
    pub classes: Vec<ClassSpec>,
    /// Query latencies per class (post-warm-up).
    pub query_latency_by_class: BTreeMap<u8, LatencyReservoir>,
    /// Query latencies per `(class, fanout)` type (post-warm-up).
    pub query_latency_by_type: BTreeMap<QueryTypeKey, LatencyReservoir>,
    /// Request latencies keyed by the class of the request's first query
    /// (only populated for multi-query requests).
    pub request_latency_by_class: BTreeMap<u8, LatencyReservoir>,
    /// Task pre-dequeuing times (queuing delay before reaching the server).
    pub pre_dequeue: LatencyReservoir,
    /// Load accounting (busy time, accepted/rejected work, miss counts).
    pub load: LoadStats,
    /// Executed service time per server — lets experiments report per-server
    /// or per-cluster utilization (Fig. 9's x-axis is the Server-room
    /// cluster's load).
    pub busy_by_server: Vec<SimDuration>,
    /// Simulated time at the last processed event.
    pub elapsed: SimTime,
    /// Queries whose latency was recorded (arrived after warm-up and were
    /// admitted).
    pub completed_queries: u64,
    /// Queries rejected by admission control.
    pub rejected_queries: u64,
    /// Total discrete events the engine processed during the run (the
    /// denominator-free basis for events/sec throughput reporting).
    pub events_processed: u64,
    /// Fault/hedge/partial counters (all zero without a fault plan or
    /// mitigation config).
    pub robustness: RobustnessStats,
    /// Latencies of partially completed queries, kept out of the per-class
    /// SLO reservoirs so graceful degradation cannot flatter the tail.
    pub partial_latency: LatencyReservoir,
    /// Task lifecycle accounting from the durable state store: end-of-run
    /// state gauges plus lease/reclaim/duplicate/stale counters (reclaims
    /// and suppressions are zero without a lease TTL or fault plan).
    pub lifecycle: LifecycleStats,
    /// Health-tracking counters (ejections, readmissions, probes, rerouted
    /// tasks, floor denials); all zero without a
    /// [`HealthConfig`](tailguard_sched::HealthConfig).
    pub health: HealthStats,
    /// Final per-server EWMA health scores (empty without health tracking;
    /// servers that never completed a task report 0).
    pub server_health: Vec<f64>,
    /// Times the adaptive estimator rolled its observation window (always
    /// zero without an [`AdaptiveWindow`](tailguard_sched::AdaptiveWindow)).
    pub estimator_window_rolls: u64,
}

impl SimReport {
    /// Minimum per-type sample count for a type to participate in SLO
    /// verdicts; tinier types are statistically meaningless.
    pub const MIN_TYPE_SAMPLES: usize = 20;

    /// The measured `p`-th percentile query latency of `class`
    /// ([`SimDuration::ZERO`] if the class saw no queries).
    pub fn class_tail(&mut self, class: u8, p: f64) -> SimDuration {
        self.query_latency_by_class
            .get_mut(&class)
            .map_or(SimDuration::ZERO, |r| r.percentile(p))
    }

    /// The measured tail of one `(class, fanout)` type at that class's
    /// configured percentile.
    pub fn type_tail(&mut self, class: u8, fanout: u32) -> SimDuration {
        // tg-lint: allow(panic-surface) -- per-class/per-server tables are sized from the scenario spec; `class` ids come from those same specs
        let p = self.classes[class as usize].percentile;
        self.query_latency_by_type
            .get_mut(&QueryTypeKey { class, fanout })
            .map_or(SimDuration::ZERO, |r| r.percentile(p))
    }

    /// True when **every** query type with at least
    /// [`Self::MIN_TYPE_SAMPLES`] samples meets its class SLO — the paper's
    /// acceptance criterion for a load point.
    pub fn meets_all_slos(&mut self) -> bool {
        let classes = self.classes.clone();
        let keys: Vec<QueryTypeKey> = self
            .query_latency_by_type
            .iter()
            .filter(|(_, r)| r.len() >= Self::MIN_TYPE_SAMPLES)
            .map(|(k, _)| *k)
            .collect();
        keys.into_iter().all(|k| {
            // tg-lint: allow(panic-surface) -- per-class/per-server tables are sized from the scenario spec; `class` ids come from those same specs
            let spec = classes[k.class as usize];
            let tail = self
                .query_latency_by_type
                .get_mut(&k)
                // tg-lint: allow(unwrap-in-lib) -- the key was listed from this same map two lines up
                .expect("key just listed")
                .percentile(spec.percentile);
            tail <= spec.slo
        })
    }

    /// Measured (accepted) load: executed busy time over cluster capacity.
    pub fn accepted_load(&self) -> f64 {
        self.load.accepted_load(self.elapsed)
    }

    /// Load equivalent of admission-rejected work.
    pub fn rejected_load(&self) -> f64 {
        self.load.rejected_load(self.elapsed)
    }

    /// Offered load = accepted + rejected.
    pub fn offered_load(&self) -> f64 {
        self.load.offered_load(self.elapsed)
    }

    /// Mean utilization of a contiguous server range (e.g. one hardware
    /// cluster of the SaS testbed).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or empty, or when no time has
    /// elapsed.
    pub fn server_range_load(&self, range: std::ops::Range<usize>) -> f64 {
        assert!(!range.is_empty() && range.end <= self.busy_by_server.len());
        assert!(self.elapsed > SimTime::ZERO, "no simulated time elapsed");
        // tg-lint: allow(panic-surface) -- server ranges come from the scenario's cluster layout, bounded by busy_by_server's length
        let busy: f64 = self.busy_by_server[range.clone()]
            .iter()
            .map(|d| d.as_nanos() as f64)
            .sum();
        busy / (self.elapsed.as_nanos() as f64 * range.len() as f64)
    }

    /// Fraction of dequeued tasks that missed their queuing deadline.
    pub fn deadline_miss_ratio(&self) -> f64 {
        self.load.deadline_miss_ratio()
    }

    /// A human-readable multi-line summary (one row per query type).
    pub fn render_table(&mut self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "policy={} load={:.1}% miss={:.2}% completed={} rejected={}",
            self.policy,
            self.accepted_load() * 100.0,
            self.deadline_miss_ratio() * 100.0,
            self.completed_queries,
            self.rejected_queries
        );
        let keys: Vec<QueryTypeKey> = self.query_latency_by_type.keys().copied().collect();
        for k in keys {
            // tg-lint: allow(panic-surface) -- per-class/per-server tables are sized from the scenario spec; `class` ids come from those same specs
            let spec = self.classes[k.class as usize];
            let tail = self.type_tail(k.class, k.fanout);
            // tg-lint: allow(panic-surface) -- `k` was read from this map's own iterator
            let n = self.query_latency_by_type[&k].len();
            let _ = writeln!(
                out,
                "  class {} fanout {:>4}: p{:>4.1} = {:>8.3} ms (SLO {:>8.3} ms, n={})",
                k.class,
                k.fanout,
                spec.percentile * 100.0,
                tail.as_millis_f64(),
                spec.slo.as_millis_f64(),
                n
            );
        }
        out
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SimReport[{} — {} queries, load {:.1}%]",
            self.policy,
            self.completed_queries,
            self.accepted_load() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_simcore::SimDuration;

    fn report_with_type(class: u8, fanout: u32, samples: Vec<u64>) -> SimReport {
        let mut by_type = BTreeMap::new();
        let mut by_class = BTreeMap::new();
        let res: LatencyReservoir = samples
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect();
        by_type.insert(QueryTypeKey { class, fanout }, res.clone());
        by_class.insert(class, res);
        SimReport {
            policy: Policy::TfEdf,
            classes: vec![ClassSpec::p99(SimDuration::from_millis(10))],
            query_latency_by_class: by_class,
            query_latency_by_type: by_type,
            request_latency_by_class: BTreeMap::new(),
            pre_dequeue: LatencyReservoir::new(),
            load: LoadStats::new(4),
            busy_by_server: vec![SimDuration::ZERO; 4],
            elapsed: SimTime::from_millis(1000),
            completed_queries: samples.len() as u64,
            rejected_queries: 0,
            events_processed: 0,
            robustness: RobustnessStats::default(),
            partial_latency: LatencyReservoir::new(),
            lifecycle: LifecycleStats::default(),
            health: HealthStats::default(),
            server_health: Vec::new(),
            estimator_window_rolls: 0,
        }
    }

    #[test]
    fn meets_slos_passes_under_slo() {
        let mut r = report_with_type(0, 10, (1..=100).collect());
        // p99 = 99ms > 10ms SLO → fails
        assert!(!r.meets_all_slos());
        let mut ok = report_with_type(0, 10, vec![5; 100]);
        assert!(ok.meets_all_slos());
    }

    #[test]
    fn tiny_types_ignored_in_verdict() {
        let mut r = report_with_type(0, 100, vec![9999; SimReport::MIN_TYPE_SAMPLES - 1]);
        assert!(
            r.meets_all_slos(),
            "under-sampled type must not fail the verdict"
        );
    }

    #[test]
    fn class_tail_and_type_tail() {
        let mut r = report_with_type(1, 10, (1..=100).collect());
        r.classes = vec![
            ClassSpec::p99(SimDuration::from_millis(10)),
            ClassSpec::p99(SimDuration::from_millis(10)),
        ];
        assert_eq!(r.class_tail(1, 0.5), SimDuration::from_millis(50));
        assert_eq!(r.type_tail(1, 10), SimDuration::from_millis(99));
        assert_eq!(r.class_tail(7, 0.5), SimDuration::ZERO);
    }

    #[test]
    fn render_table_contains_rows() {
        let mut r = report_with_type(0, 10, vec![5; 100]);
        let t = r.render_table();
        assert!(t.contains("class 0 fanout   10"));
        assert!(t.contains("TailGuard"));
    }
}

//! Configuration types: classes, clusters, queries, scenarios.

use std::fmt;
use std::sync::Arc;
use tailguard_faults::FaultPlan;
use tailguard_policy::Policy;
use tailguard_sched::{AdaptiveWindow, EstimatorMode, HealthConfig, MitigationConfig};
use tailguard_simcore::{SimDuration, SimRng, SimTime};
use tailguard_workload::{ArrivalProcess, DriftPlan, QueryMix, Trace};

// Service classes, clusters, and admission control moved into the shared
// scheduling core so the simulator and the testbed configure the same
// `QueryHandler`; re-exported here to keep `tailguard::ClassSpec` et al.
// working.
pub use tailguard_sched::{AdmissionConfig, ClassSpec, ClusterSpec};

/// One query inside a request: class, fanout and optional pre-computed
/// placement / budget.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Service class index into [`SimConfig::classes`].
    pub class: u8,
    /// Query fanout `k_f`.
    pub fanout: u32,
    /// Pre-chosen target servers. `None` lets the simulator pick `k_f`
    /// distinct servers uniformly at random (the paper's simulation
    /// placement); presets with skewed placement (SaS) fill this in.
    pub servers: Option<Vec<u32>>,
    /// Overrides the estimator-derived pre-dequeuing budget `T_b` — used by
    /// the request-decomposition extension (Eq. 7) to assign per-query
    /// budgets out of a request-level budget.
    pub budget_override: Option<SimDuration>,
    /// Per-task budget overrides (one per task, aligned with the placement)
    /// — used by the footnote-4 ablation to compare the paper's shared
    /// query-wide deadline against per-task deadlines. Takes precedence
    /// over `budget_override`.
    pub task_budgets: Option<Vec<SimDuration>>,
}

impl QuerySpec {
    /// A plain query of `class` with `fanout`, default placement and
    /// estimator-derived budget.
    pub fn new(class: u8, fanout: u32) -> Self {
        QuerySpec {
            class,
            fanout,
            servers: None,
            budget_override: None,
            task_budgets: None,
        }
    }
}

/// A user request: one or more queries issued *sequentially* (query `i+1`
/// cannot start before query `i` completes — the dependency model of Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestInput {
    /// When the request (i.e. its first query) arrives.
    pub arrival: SimTime,
    /// The request's queries in issue order; `len() == 1` for plain queries.
    pub queries: Vec<QuerySpec>,
}

/// The complete workload for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimInput {
    /// Requests sorted by arrival time.
    pub requests: Vec<RequestInput>,
}

impl SimInput {
    /// Wraps a generated [`Trace`] (each record becomes a single-query
    /// request).
    pub fn from_trace(trace: &Trace) -> Self {
        SimInput {
            requests: trace
                .records
                .iter()
                .map(|r| RequestInput {
                    arrival: r.arrival(),
                    queries: vec![QuerySpec::new(r.class, r.fanout)],
                })
                .collect(),
        }
    }

    /// Total number of queries across all requests.
    pub fn query_count(&self) -> usize {
        self.requests.iter().map(|r| r.queries.len()).sum()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when there are no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// A mid-run change to a range of servers' service speed — failure
/// injection for the scenarios §III.B.2 motivates the online updating
/// process with ("skewed workloads, uneven resource allocation and
/// resource availability changes").
///
/// From `at` onward, service times drawn for servers in `servers` are
/// multiplied by `factor` (`> 1` = slowdown, `< 1` = speedup). Multiple
/// events compose multiplicatively.
#[derive(Debug, Clone, PartialEq)]
pub struct Slowdown {
    /// When the change takes effect.
    pub at: SimTime,
    /// The affected server index range.
    pub servers: std::ops::Range<u32>,
    /// Service-time multiplier.
    pub factor: f64,
}

impl Slowdown {
    /// Creates a slowdown event.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive and the range is
    /// non-empty.
    /// `at` is virtual time (nanosecond domain).
    pub fn new(at: SimTime, servers: std::ops::Range<u32>, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        assert!(!servers.is_empty(), "server range must be non-empty");
        Slowdown {
            at,
            servers,
            factor,
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The task-server cluster.
    pub cluster: ClusterSpec,
    /// Service classes, indexed by `QuerySpec::class`.
    pub classes: Vec<ClassSpec>,
    /// The queuing policy under test.
    pub policy: Policy,
    /// Optional admission control.
    pub admission: Option<AdmissionConfig>,
    /// How the deadline estimator obtains per-server CDFs.
    pub estimator: EstimatorMode,
    /// Number of initial *queries* whose latencies are discarded as
    /// warm-up.
    pub warmup_queries: usize,
    /// Master seed for service times and placement.
    pub seed: u64,
    /// Mid-run server speed changes (failure injection); empty by default.
    pub slowdowns: Vec<Slowdown>,
    /// Interval fault episodes (slowdowns, stalls, blackouts) applied at
    /// task dispatch/completion time. `None` (the default) injects nothing
    /// and leaves the hot path untouched.
    pub faults: Option<FaultPlan>,
    /// Straggler/fault mitigation (hedging, retries, partial quorum) in the
    /// shared scheduling core. `None` (the default) disables it.
    pub mitigation: Option<MitigationConfig>,
    /// Lease TTL for dispatched tasks. `Some(ttl)` arms crash recovery:
    /// every dispatch carries a fenced lease expiring `ttl` after dequeue,
    /// and an expired lease is reclaimed — re-enqueued with its *original*
    /// deadline `t_D`. `None` (the default) disables leasing entirely, so
    /// no lease-check events enter the heap and runs stay bit-identical to
    /// pre-lease ones.
    pub lease: Option<SimDuration>,
    /// Per-server health scoring with outlier ejection in the scheduling
    /// core. `None` (the default) disables it and leaves runs
    /// bit-identical.
    pub health: Option<HealthConfig>,
    /// Adaptive (windowed/decayed) deadline estimation: the online
    /// estimator's CDFs roll every `window` observations so `x_p^u(k)`
    /// re-converges after a shift. `None` (the default) keeps cumulative
    /// estimation and bit-identical runs. Only meaningful with an online
    /// [`EstimatorMode`].
    pub adaptive: Option<AdaptiveWindow>,
}

impl SimConfig {
    /// Creates a configuration with no admission control, analytic
    /// estimator, 5 % of a 100k-query run as default warm-up, and seed 1.
    pub fn new(cluster: ClusterSpec, classes: Vec<ClassSpec>, policy: Policy) -> Self {
        assert!(!classes.is_empty(), "need at least one class");
        SimConfig {
            cluster,
            classes,
            policy,
            admission: None,
            estimator: EstimatorMode::Analytic,
            warmup_queries: 5_000,
            seed: 1,
            slowdowns: Vec::new(),
            faults: None,
            mitigation: None,
            lease: None,
            health: None,
            adaptive: None,
        }
    }

    /// Sets the queuing policy (builder-style).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables admission control (builder-style).
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Sets the estimator mode (builder-style).
    pub fn with_estimator(mut self, estimator: EstimatorMode) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the warm-up query count (builder-style).
    pub fn with_warmup(mut self, warmup_queries: usize) -> Self {
        self.warmup_queries = warmup_queries;
        self
    }

    /// Sets the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a mid-run server speed change (builder-style).
    pub fn with_slowdown(mut self, slowdown: Slowdown) -> Self {
        self.slowdowns.push(slowdown);
        self
    }

    /// Sets the interval fault plan (builder-style). An empty plan behaves
    /// exactly like no plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enables straggler/fault mitigation (builder-style).
    pub fn with_mitigation(mut self, mitigation: MitigationConfig) -> Self {
        self.mitigation = Some(mitigation);
        self
    }

    /// Arms lease-fenced crash recovery with the given TTL (builder-style).
    /// `ttl` is a virtual-time duration (nanosecond domain).
    pub fn with_lease(mut self, ttl: SimDuration) -> Self {
        self.lease = Some(ttl);
        self
    }

    /// Enables per-server health scoring with outlier ejection
    /// (builder-style).
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = Some(health);
        self
    }

    /// Enables adaptive (windowed/decayed) deadline estimation
    /// (builder-style).
    pub fn with_adaptive(mut self, adaptive: AdaptiveWindow) -> Self {
        self.adaptive = Some(adaptive);
        self
    }
}

/// A placement function: picks target servers for a `(class, fanout)` query.
pub type PlacementFn = dyn Fn(&mut SimRng, u8, u32) -> Vec<u32> + Send + Sync;

/// A reusable experiment scenario: everything except the policy and the
/// offered load, which the max-load search varies.
#[derive(Clone)]
pub struct Scenario {
    /// Human-readable name, e.g. `"Masstree single-class x99=0.8ms"`.
    pub label: String,
    /// The cluster under test.
    pub cluster: ClusterSpec,
    /// The service classes.
    pub classes: Vec<ClassSpec>,
    /// Class/fanout mix.
    pub mix: QueryMix,
    /// Arrival process family; its rate is rescaled per load point.
    pub arrival: ArrivalProcess,
    /// Mean service work per *task* in ms, used to convert load to rate via
    /// `λ = ρ·N / (E[k_f]·T̄_m)`. Presets with skewed placement set this to
    /// the placement-weighted mean.
    pub mean_task_work_ms: f64,
    /// Optional skewed placement (None = uniform distinct servers).
    pub placement: Option<Arc<PlacementFn>>,
    /// Base seed for workload generation.
    pub seed: u64,
    /// Optional workload drift (diurnal/flash-crowd rate curves, mix
    /// shifts). `None` (the default) keeps the stationary workload and
    /// bit-identical generation.
    pub drift: Option<DriftPlan>,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("label", &self.label)
            .field("servers", &self.cluster.servers())
            .field("classes", &self.classes)
            .field("arrival", &self.arrival.label())
            .finish()
    }
}

impl Scenario {
    /// Expected fanout of the mix.
    pub fn mean_fanout(&self) -> f64 {
        let mut total = 0.0;
        let shares = self.mix.classes();
        let prob_sum: f64 = shares.iter().map(|c| c.probability).sum();
        for share in shares {
            total += share.probability / prob_sum * share.fanout.mean();
        }
        total
    }

    /// The query arrival rate (queries/ms) that produces offered load `ρ`:
    /// `λ = ρ·N / (E[k_f]·T̄_m)`.
    ///
    /// # Panics
    ///
    /// Panics unless `load` is positive.
    pub fn rate_for_load(&self, load: f64) -> f64 {
        assert!(load > 0.0, "load must be positive");
        load * self.cluster.servers() as f64 / (self.mean_fanout() * self.mean_task_work_ms)
    }

    /// Generates the workload for one run at offered load `ρ` with
    /// `queries` single-query requests.
    pub fn input(&self, load: f64, queries: usize) -> SimInput {
        let rate = self.rate_for_load(load);
        let arrival = self.arrival.with_rate(rate);
        let mut master = SimRng::seed(self.seed);
        let mut arrival_rng = master.split();
        let mut mix_rng = master.split();
        let mut place_rng = master.split();
        let mut t = SimTime::ZERO;
        let mut requests = Vec::with_capacity(queries);
        // Time-varying rate via gap rescaling: the same exponential draw,
        // stretched or compressed by the drift's instantaneous rate factor
        // — so a drift-free plan reproduces the stationary trace exactly.
        let rate_drift = self.drift.as_ref().filter(|d| d.modulates_rate()).cloned();
        for _ in 0..queries {
            let gap = arrival.next_gap(&mut arrival_rng);
            t += match &rate_drift {
                Some(d) => gap.mul_f64(1.0 / d.rate_factor(t)),
                None => gap,
            };
            let (class, fanout) = match &self.drift {
                Some(d) => d.sample_mix(&self.mix, t, &mut mix_rng),
                None => self.mix.sample(&mut mix_rng),
            };
            let servers = self
                .placement
                .as_ref()
                .map(|f| f(&mut place_rng, class, fanout));
            requests.push(RequestInput {
                arrival: t,
                queries: vec![QuerySpec {
                    class,
                    fanout,
                    servers,
                    budget_override: None,
                    task_budgets: None,
                }],
            });
        }
        SimInput { requests }
    }

    /// Builds a [`SimConfig`] for this scenario under `policy`.
    pub fn config(&self, policy: Policy) -> SimConfig {
        SimConfig::new(self.cluster.clone(), self.classes.clone(), policy)
            .with_seed(self.seed ^ 0x5eed_c0de)
    }

    /// Attaches a workload drift plan (builder-style).
    pub fn with_drift(mut self, drift: DriftPlan) -> Self {
        self.drift = Some(drift);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_dist::Deterministic;
    use tailguard_workload::FanoutDist;

    #[test]
    fn scenario_rate_for_load() {
        let scenario = Scenario {
            label: "t".into(),
            cluster: ClusterSpec::homogeneous(100, Deterministic::new(0.2)),
            classes: vec![ClassSpec::p99(SimDuration::from_millis(1))],
            mix: QueryMix::single(FanoutDist::fixed(10)),
            arrival: ArrivalProcess::poisson(1.0),
            mean_task_work_ms: 0.2,
            placement: None,
            seed: 1,
            drift: None,
        };
        // λ = 0.5 * 100 / (10 * 0.2) = 25 queries/ms
        assert!((scenario.rate_for_load(0.5) - 25.0).abs() < 1e-12);
        assert_eq!(scenario.mean_fanout(), 10.0);
    }

    #[test]
    fn scenario_input_deterministic_and_sized() {
        let scenario = Scenario {
            label: "t".into(),
            cluster: ClusterSpec::homogeneous(4, Deterministic::new(0.1)),
            classes: vec![ClassSpec::p99(SimDuration::from_millis(1))],
            mix: QueryMix::single(FanoutDist::fixed(2)),
            arrival: ArrivalProcess::poisson(1.0),
            mean_task_work_ms: 0.1,
            placement: None,
            seed: 9,
            drift: None,
        };
        let a = scenario.input(0.4, 100);
        let b = scenario.input(0.4, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.query_count(), 100);
        assert!(a.requests.windows(2).all(|w| w[1].arrival >= w[0].arrival));
    }

    #[test]
    fn scenario_placement_applied() {
        let scenario = Scenario {
            label: "t".into(),
            cluster: ClusterSpec::homogeneous(8, Deterministic::new(0.1)),
            classes: vec![ClassSpec::p99(SimDuration::from_millis(1))],
            mix: QueryMix::single(FanoutDist::fixed(1)),
            arrival: ArrivalProcess::poisson(1.0),
            mean_task_work_ms: 0.1,
            placement: Some(Arc::new(|_rng, _class, _fanout| vec![3])),
            seed: 2,
            drift: None,
        };
        let input = scenario.input(0.2, 10);
        for r in &input.requests {
            assert_eq!(r.queries[0].servers, Some(vec![3]));
        }
    }

    #[test]
    fn sim_input_from_trace() {
        let trace = Trace::generate(
            "x",
            &ArrivalProcess::poisson(1.0),
            &QueryMix::single(FanoutDist::fixed(3)),
            50,
            1,
        );
        let input = SimInput::from_trace(&trace);
        assert_eq!(input.len(), 50);
        assert_eq!(input.query_count(), 50);
        assert_eq!(input.requests[0].queries[0].fanout, 3);
    }

    #[test]
    fn sim_config_builder() {
        let cfg = SimConfig::new(
            ClusterSpec::homogeneous(1, Deterministic::new(1.0)),
            vec![ClassSpec::p99(SimDuration::from_millis(5))],
            Policy::Fifo,
        )
        .with_policy(Policy::TfEdf)
        .with_admission(AdmissionConfig::new(SimDuration::from_millis(100), 0.02))
        .with_warmup(10)
        .with_seed(42);
        assert_eq!(cfg.policy, Policy::TfEdf);
        assert!(cfg.admission.is_some());
        assert_eq!(cfg.warmup_queries, 10);
        assert_eq!(cfg.seed, 42);
    }
}

//! Configuration types: classes, clusters, queries, scenarios.

use std::fmt;
use std::sync::Arc;
use tailguard_dist::{Distribution, DynDistribution};
use tailguard_policy::Policy;
use tailguard_simcore::{SimDuration, SimRng, SimTime};
use tailguard_workload::{ArrivalProcess, QueryMix, Trace};

use crate::estimator::EstimatorMode;

/// A service class: a tail-latency SLO at a percentile.
///
/// The paper expresses SLOs as "the `p`-th percentile query latency must not
/// exceed `x_p^SLO`"; the evaluation uses `p = 99` throughout.
///
/// # Example
///
/// ```
/// use tailguard::ClassSpec;
/// use tailguard_simcore::SimDuration;
///
/// let class = ClassSpec::p99(SimDuration::from_millis_f64(1.0));
/// assert_eq!(class.percentile, 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSpec {
    /// The tail latency SLO `x_p^SLO`.
    pub slo: SimDuration,
    /// The percentile `p` as a fraction in (0, 1), e.g. `0.99`.
    pub percentile: f64,
}

impl ClassSpec {
    /// Creates a class SLO.
    ///
    /// # Panics
    ///
    /// Panics unless `percentile ∈ (0, 1)` and the SLO is positive.
    pub fn new(slo: SimDuration, percentile: f64) -> Self {
        assert!(
            percentile > 0.0 && percentile < 1.0,
            "percentile must lie in (0,1)"
        );
        assert!(!slo.is_zero(), "SLO must be positive");
        ClassSpec { slo, percentile }
    }

    /// A 99th-percentile SLO — the paper's standard setting.
    pub fn p99(slo: SimDuration) -> Self {
        ClassSpec::new(slo, 0.99)
    }

    /// This class's SLO scaled by `factor` (e.g. the paper's lower class at
    /// `1.5 × x99`).
    pub fn scaled(&self, factor: f64) -> Self {
        ClassSpec::new(self.slo.mul_f64(factor), self.percentile)
    }
}

/// The task-server cluster: size and per-server unloaded service-time
/// distributions.
#[derive(Clone)]
pub struct ClusterSpec {
    servers: usize,
    service: Vec<DynDistribution>,
}

impl fmt::Debug for ClusterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterSpec")
            .field("servers", &self.servers)
            .field("heterogeneous", &(self.service.len() > 1))
            .finish()
    }
}

impl ClusterSpec {
    /// A homogeneous cluster: `n` servers sharing one service distribution
    /// (the paper's simulation setting, §IV.A).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn homogeneous(n: usize, service: impl Distribution + 'static) -> Self {
        assert!(n > 0, "cluster needs at least one server");
        ClusterSpec {
            servers: n,
            service: vec![Arc::new(service)],
        }
    }

    /// A heterogeneous cluster with one distribution per server (the SaS
    /// testbed setting, §IV.E).
    ///
    /// # Panics
    ///
    /// Panics when `dists` is empty.
    pub fn heterogeneous(dists: Vec<DynDistribution>) -> Self {
        assert!(!dists.is_empty(), "cluster needs at least one server");
        ClusterSpec {
            servers: dists.len(),
            service: dists,
        }
    }

    /// Number of task servers `N`.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The service distribution of server `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= servers()`.
    pub fn service_of(&self, i: usize) -> &DynDistribution {
        assert!(i < self.servers, "server index out of range");
        if self.service.len() == 1 {
            &self.service[0]
        } else {
            &self.service[i]
        }
    }

    /// True when all servers share one distribution.
    pub fn is_homogeneous(&self) -> bool {
        self.service.len() == 1
    }

    /// Mean task service time averaged over servers, in ms.
    pub fn mean_service_ms(&self) -> f64 {
        if self.service.len() == 1 {
            self.service[0].mean()
        } else {
            self.service.iter().map(|d| d.mean()).sum::<f64>() / self.service.len() as f64
        }
    }
}

/// One query inside a request: class, fanout and optional pre-computed
/// placement / budget.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Service class index into [`SimConfig::classes`].
    pub class: u8,
    /// Query fanout `k_f`.
    pub fanout: u32,
    /// Pre-chosen target servers. `None` lets the simulator pick `k_f`
    /// distinct servers uniformly at random (the paper's simulation
    /// placement); presets with skewed placement (SaS) fill this in.
    pub servers: Option<Vec<u32>>,
    /// Overrides the estimator-derived pre-dequeuing budget `T_b` — used by
    /// the request-decomposition extension (Eq. 7) to assign per-query
    /// budgets out of a request-level budget.
    pub budget_override: Option<SimDuration>,
    /// Per-task budget overrides (one per task, aligned with the placement)
    /// — used by the footnote-4 ablation to compare the paper's shared
    /// query-wide deadline against per-task deadlines. Takes precedence
    /// over `budget_override`.
    pub task_budgets: Option<Vec<SimDuration>>,
}

impl QuerySpec {
    /// A plain query of `class` with `fanout`, default placement and
    /// estimator-derived budget.
    pub fn new(class: u8, fanout: u32) -> Self {
        QuerySpec {
            class,
            fanout,
            servers: None,
            budget_override: None,
            task_budgets: None,
        }
    }
}

/// A user request: one or more queries issued *sequentially* (query `i+1`
/// cannot start before query `i` completes — the dependency model of Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestInput {
    /// When the request (i.e. its first query) arrives.
    pub arrival: SimTime,
    /// The request's queries in issue order; `len() == 1` for plain queries.
    pub queries: Vec<QuerySpec>,
}

/// The complete workload for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimInput {
    /// Requests sorted by arrival time.
    pub requests: Vec<RequestInput>,
}

impl SimInput {
    /// Wraps a generated [`Trace`] (each record becomes a single-query
    /// request).
    pub fn from_trace(trace: &Trace) -> Self {
        SimInput {
            requests: trace
                .records
                .iter()
                .map(|r| RequestInput {
                    arrival: r.arrival(),
                    queries: vec![QuerySpec::new(r.class, r.fanout)],
                })
                .collect(),
        }
    }

    /// Total number of queries across all requests.
    pub fn query_count(&self) -> usize {
        self.requests.iter().map(|r| r.queries.len()).sum()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when there are no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// A mid-run change to a range of servers' service speed — failure
/// injection for the scenarios §III.B.2 motivates the online updating
/// process with ("skewed workloads, uneven resource allocation and
/// resource availability changes").
///
/// From `at` onward, service times drawn for servers in `servers` are
/// multiplied by `factor` (`> 1` = slowdown, `< 1` = speedup). Multiple
/// events compose multiplicatively.
#[derive(Debug, Clone, PartialEq)]
pub struct Slowdown {
    /// When the change takes effect.
    pub at: SimTime,
    /// The affected server index range.
    pub servers: std::ops::Range<u32>,
    /// Service-time multiplier.
    pub factor: f64,
}

impl Slowdown {
    /// Creates a slowdown event.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive and the range is
    /// non-empty.
    pub fn new(at: SimTime, servers: std::ops::Range<u32>, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        assert!(!servers.is_empty(), "server range must be non-empty");
        Slowdown {
            at,
            servers,
            factor,
        }
    }
}

/// Query admission control parameters (§III.C).
///
/// The paper: "The query handler can update the task deadline violation
/// ratio in a given moving time window. When the ratio exceeds R_th,
/// upcoming queries are rejected, till the ratio falls back below R_th
/// again. The moving time window can be set to be the same as the time
/// window in which the tail latency SLOs should be guaranteed."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Moving *time* window over task-dequeue outcomes (the paper sizes it
    /// as 1 000 queries' worth of time for the Masstree OLDI case).
    pub window: SimDuration,
    /// Deadline-violation ratio threshold `R_th` above which new queries
    /// are rejected (the paper finds 1.7 % at the maximum acceptable load).
    pub threshold: f64,
    /// Minimum dequeue events inside the window before the controller may
    /// reject (guards against noise right after start-up or idle spells).
    pub min_samples: usize,
    /// Hysteresis: once rejecting, admission resumes only when the ratio
    /// falls below `resume_threshold` (≤ `threshold`), letting the backlog
    /// drain before new load is accepted. Defaults to `threshold` (no
    /// hysteresis).
    pub resume_threshold: f64,
}

impl AdmissionConfig {
    /// Creates an admission-control configuration with a default
    /// `min_samples` of 50.
    ///
    /// # Panics
    ///
    /// Panics unless the window is positive and the threshold lies in
    /// `(0, 1)`.
    pub fn new(window: SimDuration, threshold: f64) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must lie in (0,1)"
        );
        AdmissionConfig {
            window,
            threshold,
            min_samples: 50,
            resume_threshold: threshold,
        }
    }

    /// Overrides the minimum sample count (builder-style).
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// Enables hysteresis (builder-style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < resume_threshold <= threshold`.
    pub fn with_resume_threshold(mut self, resume_threshold: f64) -> Self {
        assert!(
            resume_threshold > 0.0 && resume_threshold <= self.threshold,
            "resume threshold must lie in (0, threshold]"
        );
        self.resume_threshold = resume_threshold;
        self
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The task-server cluster.
    pub cluster: ClusterSpec,
    /// Service classes, indexed by `QuerySpec::class`.
    pub classes: Vec<ClassSpec>,
    /// The queuing policy under test.
    pub policy: Policy,
    /// Optional admission control.
    pub admission: Option<AdmissionConfig>,
    /// How the deadline estimator obtains per-server CDFs.
    pub estimator: EstimatorMode,
    /// Number of initial *queries* whose latencies are discarded as
    /// warm-up.
    pub warmup_queries: usize,
    /// Master seed for service times and placement.
    pub seed: u64,
    /// Mid-run server speed changes (failure injection); empty by default.
    pub slowdowns: Vec<Slowdown>,
}

impl SimConfig {
    /// Creates a configuration with no admission control, analytic
    /// estimator, 5 % of a 100k-query run as default warm-up, and seed 1.
    pub fn new(cluster: ClusterSpec, classes: Vec<ClassSpec>, policy: Policy) -> Self {
        assert!(!classes.is_empty(), "need at least one class");
        SimConfig {
            cluster,
            classes,
            policy,
            admission: None,
            estimator: EstimatorMode::Analytic,
            warmup_queries: 5_000,
            seed: 1,
            slowdowns: Vec::new(),
        }
    }

    /// Sets the queuing policy (builder-style).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables admission control (builder-style).
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Sets the estimator mode (builder-style).
    pub fn with_estimator(mut self, estimator: EstimatorMode) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the warm-up query count (builder-style).
    pub fn with_warmup(mut self, warmup_queries: usize) -> Self {
        self.warmup_queries = warmup_queries;
        self
    }

    /// Sets the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a mid-run server speed change (builder-style).
    pub fn with_slowdown(mut self, slowdown: Slowdown) -> Self {
        self.slowdowns.push(slowdown);
        self
    }
}

/// A placement function: picks target servers for a `(class, fanout)` query.
pub type PlacementFn = dyn Fn(&mut SimRng, u8, u32) -> Vec<u32> + Send + Sync;

/// A reusable experiment scenario: everything except the policy and the
/// offered load, which the max-load search varies.
#[derive(Clone)]
pub struct Scenario {
    /// Human-readable name, e.g. `"Masstree single-class x99=0.8ms"`.
    pub label: String,
    /// The cluster under test.
    pub cluster: ClusterSpec,
    /// The service classes.
    pub classes: Vec<ClassSpec>,
    /// Class/fanout mix.
    pub mix: QueryMix,
    /// Arrival process family; its rate is rescaled per load point.
    pub arrival: ArrivalProcess,
    /// Mean service work per *task* in ms, used to convert load to rate via
    /// `λ = ρ·N / (E[k_f]·T̄_m)`. Presets with skewed placement set this to
    /// the placement-weighted mean.
    pub mean_task_work_ms: f64,
    /// Optional skewed placement (None = uniform distinct servers).
    pub placement: Option<Arc<PlacementFn>>,
    /// Base seed for workload generation.
    pub seed: u64,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("label", &self.label)
            .field("servers", &self.cluster.servers())
            .field("classes", &self.classes)
            .field("arrival", &self.arrival.label())
            .finish()
    }
}

impl Scenario {
    /// Expected fanout of the mix.
    pub fn mean_fanout(&self) -> f64 {
        let mut total = 0.0;
        let shares = self.mix.classes();
        let prob_sum: f64 = shares.iter().map(|c| c.probability).sum();
        for share in shares {
            total += share.probability / prob_sum * share.fanout.mean();
        }
        total
    }

    /// The query arrival rate (queries/ms) that produces offered load `ρ`:
    /// `λ = ρ·N / (E[k_f]·T̄_m)`.
    ///
    /// # Panics
    ///
    /// Panics unless `load` is positive.
    pub fn rate_for_load(&self, load: f64) -> f64 {
        assert!(load > 0.0, "load must be positive");
        load * self.cluster.servers() as f64 / (self.mean_fanout() * self.mean_task_work_ms)
    }

    /// Generates the workload for one run at offered load `ρ` with
    /// `queries` single-query requests.
    pub fn input(&self, load: f64, queries: usize) -> SimInput {
        let rate = self.rate_for_load(load);
        let arrival = self.arrival.with_rate(rate);
        let mut master = SimRng::seed(self.seed);
        let mut arrival_rng = master.split();
        let mut mix_rng = master.split();
        let mut place_rng = master.split();
        let mut t = SimTime::ZERO;
        let mut requests = Vec::with_capacity(queries);
        for _ in 0..queries {
            t += arrival.next_gap(&mut arrival_rng);
            let (class, fanout) = self.mix.sample(&mut mix_rng);
            let servers = self
                .placement
                .as_ref()
                .map(|f| f(&mut place_rng, class, fanout));
            requests.push(RequestInput {
                arrival: t,
                queries: vec![QuerySpec {
                    class,
                    fanout,
                    servers,
                    budget_override: None,
                    task_budgets: None,
                }],
            });
        }
        SimInput { requests }
    }

    /// Builds a [`SimConfig`] for this scenario under `policy`.
    pub fn config(&self, policy: Policy) -> SimConfig {
        SimConfig::new(self.cluster.clone(), self.classes.clone(), policy)
            .with_seed(self.seed ^ 0x5eed_c0de)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_dist::Deterministic;
    use tailguard_workload::FanoutDist;

    #[test]
    fn class_spec_validation() {
        let c = ClassSpec::p99(SimDuration::from_millis(1));
        assert_eq!(c.percentile, 0.99);
        let low = c.scaled(1.5);
        assert_eq!(low.slo, SimDuration::from_micros(1500));
    }

    #[test]
    #[should_panic(expected = "percentile must lie in (0,1)")]
    fn class_spec_rejects_bad_percentile() {
        let _ = ClassSpec::new(SimDuration::from_millis(1), 1.0);
    }

    #[test]
    fn homogeneous_cluster_shares_distribution() {
        let c = ClusterSpec::homogeneous(10, Deterministic::new(0.5));
        assert_eq!(c.servers(), 10);
        assert!(c.is_homogeneous());
        assert_eq!(c.mean_service_ms(), 0.5);
        assert_eq!(c.service_of(9).mean(), 0.5);
    }

    #[test]
    fn heterogeneous_cluster_per_server() {
        let c = ClusterSpec::heterogeneous(vec![
            Arc::new(Deterministic::new(1.0)) as DynDistribution,
            Arc::new(Deterministic::new(3.0)),
        ]);
        assert!(!c.is_homogeneous());
        assert_eq!(c.mean_service_ms(), 2.0);
        assert_eq!(c.service_of(1).mean(), 3.0);
    }

    #[test]
    #[should_panic(expected = "server index out of range")]
    fn service_of_bounds() {
        let c = ClusterSpec::homogeneous(2, Deterministic::new(1.0));
        let _ = c.service_of(2);
    }

    #[test]
    fn scenario_rate_for_load() {
        let scenario = Scenario {
            label: "t".into(),
            cluster: ClusterSpec::homogeneous(100, Deterministic::new(0.2)),
            classes: vec![ClassSpec::p99(SimDuration::from_millis(1))],
            mix: QueryMix::single(FanoutDist::fixed(10)),
            arrival: ArrivalProcess::poisson(1.0),
            mean_task_work_ms: 0.2,
            placement: None,
            seed: 1,
        };
        // λ = 0.5 * 100 / (10 * 0.2) = 25 queries/ms
        assert!((scenario.rate_for_load(0.5) - 25.0).abs() < 1e-12);
        assert_eq!(scenario.mean_fanout(), 10.0);
    }

    #[test]
    fn scenario_input_deterministic_and_sized() {
        let scenario = Scenario {
            label: "t".into(),
            cluster: ClusterSpec::homogeneous(4, Deterministic::new(0.1)),
            classes: vec![ClassSpec::p99(SimDuration::from_millis(1))],
            mix: QueryMix::single(FanoutDist::fixed(2)),
            arrival: ArrivalProcess::poisson(1.0),
            mean_task_work_ms: 0.1,
            placement: None,
            seed: 9,
        };
        let a = scenario.input(0.4, 100);
        let b = scenario.input(0.4, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.query_count(), 100);
        assert!(a.requests.windows(2).all(|w| w[1].arrival >= w[0].arrival));
    }

    #[test]
    fn scenario_placement_applied() {
        let scenario = Scenario {
            label: "t".into(),
            cluster: ClusterSpec::homogeneous(8, Deterministic::new(0.1)),
            classes: vec![ClassSpec::p99(SimDuration::from_millis(1))],
            mix: QueryMix::single(FanoutDist::fixed(1)),
            arrival: ArrivalProcess::poisson(1.0),
            mean_task_work_ms: 0.1,
            placement: Some(Arc::new(|_rng, _class, _fanout| vec![3])),
            seed: 2,
        };
        let input = scenario.input(0.2, 10);
        for r in &input.requests {
            assert_eq!(r.queries[0].servers, Some(vec![3]));
        }
    }

    #[test]
    fn sim_input_from_trace() {
        let trace = Trace::generate(
            "x",
            &ArrivalProcess::poisson(1.0),
            &QueryMix::single(FanoutDist::fixed(3)),
            50,
            1,
        );
        let input = SimInput::from_trace(&trace);
        assert_eq!(input.len(), 50);
        assert_eq!(input.query_count(), 50);
        assert_eq!(input.requests[0].queries[0].fanout, 3);
    }

    #[test]
    fn admission_config_validation() {
        let a = AdmissionConfig::new(SimDuration::from_millis(10), 0.017).with_min_samples(10);
        assert_eq!(a.window, SimDuration::from_millis(10));
        assert_eq!(a.min_samples, 10);
    }

    #[test]
    #[should_panic(expected = "threshold must lie in (0,1)")]
    fn admission_rejects_bad_threshold() {
        let _ = AdmissionConfig::new(SimDuration::from_millis(10), 1.5);
    }

    #[test]
    fn sim_config_builder() {
        let cfg = SimConfig::new(
            ClusterSpec::homogeneous(1, Deterministic::new(1.0)),
            vec![ClassSpec::p99(SimDuration::from_millis(5))],
            Policy::Fifo,
        )
        .with_policy(Policy::TfEdf)
        .with_admission(AdmissionConfig::new(SimDuration::from_millis(100), 0.02))
        .with_warmup(10)
        .with_seed(42);
        assert_eq!(cfg.policy, Policy::TfEdf);
        assert!(cfg.admission.is_some());
        assert_eq!(cfg.warmup_queries, 10);
        assert_eq!(cfg.seed, 42);
    }
}

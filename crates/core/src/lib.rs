//! # TailGuard
//!
//! A reproduction of **"TailGuard: Tail Latency SLO Guaranteed Task
//! Scheduling for Data-Intensive User-Facing Applications"** (ICDCS 2023).
//!
//! Data-intensive user-facing (DU) queries fan out into `k_f` parallel tasks
//! and complete when the *slowest* task completes, so a 1 % task-level tail
//! becomes a 63 % query-level tail at fanout 100. TailGuard's insight is
//! that task resource demand therefore depends on **both** the query's tail
//! latency SLO **and** its fanout, and it acts on that insight in two
//! decoupled steps (§III):
//!
//! 1. **Task decomposition** ([`DeadlineEstimator`]): translate a query's
//!    SLO `x_p^SLO` and fanout `k_f` into a task queuing deadline
//!    `t_D = t_0 + x_p^SLO − x_p^u(k_f)` (Eq. 6), where the unloaded query
//!    tail `x_p^u(k_f)` comes from per-server response-time CDFs via order
//!    statistics (Eqs. 1–2).
//! 2. **TF-EDFQ**: a single earliest-deadline-first queue per task server
//!    ordered by `t_D`.
//!
//! A moving-window admission controller (§III.C, [`AdmissionConfig`])
//! rejects queries while the task deadline-violation ratio exceeds a
//! threshold, preserving the SLO of admitted queries under overload.
//!
//! The crate ships a deterministic discrete-event cluster simulator
//! ([`run_simulation`]) that replays identical workloads under TailGuard
//! and the paper's baselines (FIFO, PRIQ, T-EDFQ), plus the max-load search
//! ([`max_load`]) and every evaluation scenario of §IV
//! ([`scenarios`]).
//!
//! ## Quickstart
//!
//! ```
//! use tailguard::{scenarios, max_load, MaxLoadOptions};
//! use tailguard_policy::Policy;
//! use tailguard_workload::TailbenchWorkload;
//!
//! // Fig. 4 setup, scaled down: single class, fanouts {1,10,100}.
//! let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
//! let opts = MaxLoadOptions { queries: 20_000, ..MaxLoadOptions::default() };
//! let tg = max_load(&scenario, Policy::TfEdf, &opts);
//! let fifo = max_load(&scenario, Policy::Fifo, &opts);
//! assert!(tg >= fifo); // TailGuard sustains at least FIFO's load
//! ```

mod cluster;
mod maxload;
mod observe;
mod report;
mod request;
mod runner;
pub mod scenarios;
mod spec;

pub use cluster::{run_simulation, run_simulation_traced};
pub use maxload::{max_load, measure_at_load, sweep_loads, LoadPoint, MaxLoadOptions};
pub use observe::{
    run_simulation_observed, ObsOptions, ObservedRun, SimSnapshot, DEFAULT_RING_CAPACITY,
    FLIGHT_RING_CAPACITY,
};
pub use report::{QueryTypeKey, SimReport};
pub use request::{BudgetSplit, RequestBudgets, RequestPlanner};
pub use runner::{
    default_jobs, max_load_many, replicate, replicate_seeds, run_indexed, sweep_loads_parallel,
    ClassStat, Replication,
};
pub use spec::{
    AdmissionConfig, ClassSpec, ClusterSpec, QuerySpec, RequestInput, Scenario, SimConfig,
    SimInput, Slowdown,
};
pub use tailguard_faults::{FaultEpisode, FaultKind, FaultPlan};
pub use tailguard_sched::{
    AdaptiveWindow, CommitOutcome, DeadlineEstimator, EstimatorMode, HealthConfig, HealthStats,
    LeaseToken, LifecycleStats, MitigationConfig, RobustnessStats,
};
pub use tailguard_workload::{DriftKind, DriftPlan};

/// The runtime-agnostic scheduling core ([`tailguard_sched`]) this
/// simulator drives; also driven by the tokio testbed.
pub use tailguard_sched as sched;

//! Preset scenarios reproducing the paper's evaluation configurations
//! (§IV.B–E).

use crate::spec::{ClassSpec, ClusterSpec, Scenario};
use std::sync::Arc;
use tailguard_dist::{Distribution, DynDistribution, PiecewiseQuantile};
use tailguard_simcore::SimDuration;
use tailguard_workload::{ArrivalProcess, FanoutDist, QueryMix, TailbenchWorkload};

fn ms(v: f64) -> SimDuration {
    SimDuration::from_millis_f64(v)
}

/// §IV.B single-class case (Fig. 4, Table III): cluster of `n` servers,
/// fanouts {1, 10, 100} with P(k) ∝ 1/k, one 99th-percentile SLO of
/// `slo_ms`, Poisson arrivals.
///
/// # Panics
///
/// Panics when `n < 100` (the mix needs fanout-100 queries to fit).
/// `slo_ms` is in milliseconds of virtual time.
pub fn single_class(workload: TailbenchWorkload, slo_ms: f64, n: usize) -> Scenario {
    assert!(n >= 100, "paper mix needs at least 100 servers");
    let service = workload.service_dist();
    let mean = service.mean();
    Scenario {
        label: format!("{workload} single-class x99={slo_ms}ms N={n}"),
        cluster: ClusterSpec::homogeneous(n, service),
        classes: vec![ClassSpec::p99(ms(slo_ms))],
        mix: QueryMix::single(FanoutDist::paper_mix()),
        arrival: ArrivalProcess::poisson(1.0),
        mean_task_work_ms: mean,
        placement: None,
        seed: 0xF164 ^ n as u64,
        drift: None,
    }
}

/// §IV.B two-class case (Fig. 5): like [`single_class`] but with two
/// equiprobable classes, the lower class's SLO at `1.5 ×` the higher
/// class's, and a choice of arrival process.
/// `high_slo_ms` is in milliseconds of virtual time.
pub fn two_class(
    workload: TailbenchWorkload,
    high_slo_ms: f64,
    arrival: ArrivalProcess,
) -> Scenario {
    let service = workload.service_dist();
    let mean = service.mean();
    let high = ClassSpec::p99(ms(high_slo_ms));
    Scenario {
        label: format!(
            "{workload} two-class x99={high_slo_ms}/{:.2}ms {}",
            high_slo_ms * 1.5,
            arrival.label()
        ),
        cluster: ClusterSpec::homogeneous(100, service),
        classes: vec![high, high.scaled(1.5)],
        mix: QueryMix::equiprobable(2, FanoutDist::paper_mix()),
        arrival,
        mean_task_work_ms: mean,
        placement: None,
        seed: 0xF165,
        drift: None,
    }
}

/// §IV.C OLDI case (Fig. 6): every query fans out to all `N = 100`
/// servers; two classes with explicit SLOs (`1/1.5`, `6/10`, `10/15` ms for
/// Masstree/Shore/Xapian in the paper).
pub fn oldi_two_class(workload: TailbenchWorkload, slo_high_ms: f64, slo_low_ms: f64) -> Scenario {
    let service = workload.service_dist();
    let mean = service.mean();
    Scenario {
        label: format!("{workload} OLDI two-class x99={slo_high_ms}/{slo_low_ms}ms"),
        cluster: ClusterSpec::homogeneous(100, service),
        classes: vec![
            ClassSpec::p99(ms(slo_high_ms)),
            ClassSpec::p99(ms(slo_low_ms)),
        ],
        mix: QueryMix::equiprobable(2, FanoutDist::fixed(100)),
        arrival: ArrivalProcess::poisson(1.0),
        mean_task_work_ms: mean,
        placement: None,
        seed: 0xF166,
        drift: None,
    }
}

/// The paper's Fig. 6 SLO pairs per workload, in ms.
pub fn fig6_slos(workload: TailbenchWorkload) -> (f64, f64) {
    match workload {
        TailbenchWorkload::Masstree => (1.0, 1.5),
        TailbenchWorkload::Shore => (6.0, 10.0),
        TailbenchWorkload::Xapian => (10.0, 15.0),
    }
}

/// §IV.D extension mentioned in the text: `N = 1000` with the scaled paper
/// mix (fanouts {1, 100, 1000}).
/// `slo_ms` is in milliseconds of virtual time.
pub fn n1000_single_class(workload: TailbenchWorkload, slo_ms: f64) -> Scenario {
    let service = workload.service_dist();
    let mean = service.mean();
    Scenario {
        label: format!("{workload} single-class x99={slo_ms}ms N=1000"),
        cluster: ClusterSpec::homogeneous(1000, service),
        classes: vec![ClassSpec::p99(ms(slo_ms))],
        mix: QueryMix::single(FanoutDist::paper_mix_scaled(1000)),
        arrival: ArrivalProcess::poisson(1.0),
        mean_task_work_ms: mean,
        placement: None,
        seed: 0x1000,
        drift: None,
    }
}

/// §IV.D extension mentioned in the text: four service classes with SLOs
/// `base × {1, 1.5, 2, 3}`, OLDI fanout 100.
/// `base_slo_ms` is in milliseconds of virtual time.
pub fn four_class(workload: TailbenchWorkload, base_slo_ms: f64) -> Scenario {
    let service = workload.service_dist();
    let mean = service.mean();
    let base = ClassSpec::p99(ms(base_slo_ms));
    Scenario {
        label: format!("{workload} four-class base x99={base_slo_ms}ms"),
        cluster: ClusterSpec::homogeneous(100, service),
        classes: vec![base, base.scaled(1.5), base.scaled(2.0), base.scaled(3.0)],
        mix: QueryMix::equiprobable(4, FanoutDist::fixed(100)),
        arrival: ArrivalProcess::poisson(1.0),
        mean_task_work_ms: mean,
        placement: None,
        seed: 0xF0C4,
        drift: None,
    }
}

// ---------------------------------------------------------------------------
// SaS testbed twin (§IV.E)
// ---------------------------------------------------------------------------

/// The four hardware clusters of the SaS testbed, in server-index order:
/// servers `8c..8c+8` belong to cluster `c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SasCluster {
    /// Heavily loaded shared server room (slower Pis, near the handler).
    ServerRoom,
    /// Highest-performing Pis co-located with the query handler.
    WetLab,
    /// Faculty office, other building.
    Faculty,
    /// Graduate teaching assistant office, other building.
    Gta,
}

impl SasCluster {
    /// All four clusters in server-index order.
    pub const ALL: [SasCluster; 4] = [
        SasCluster::ServerRoom,
        SasCluster::WetLab,
        SasCluster::Faculty,
        SasCluster::Gta,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SasCluster::ServerRoom => "Server-room",
            SasCluster::WetLab => "Wet-lab",
            SasCluster::Faculty => "Faculty",
            SasCluster::Gta => "GTA",
        }
    }

    /// The paper's measured `(mean, p95, p99)` task post-queuing times for
    /// this cluster, in ms (§IV.E: 82/31/92/91, 235/112/226/228,
    /// 300/136/306/304).
    pub fn paper_stats(&self) -> (f64, f64, f64) {
        match self {
            SasCluster::ServerRoom => (82.0, 235.0, 300.0),
            SasCluster::WetLab => (31.0, 112.0, 136.0),
            SasCluster::Faculty => (92.0, 226.0, 306.0),
            SasCluster::Gta => (91.0, 228.0, 304.0),
        }
    }

    /// The server-index range of this cluster in the 32-node testbed.
    pub fn server_range(&self) -> std::ops::Range<usize> {
        // tg-lint: allow(unwrap-in-lib) -- every enum variant is listed in ALL
        let i = Self::ALL.iter().position(|c| c == self).expect("member");
        (i * 8)..(i * 8 + 8)
    }

    /// An edge-node service-time distribution calibrated to
    /// [`Self::paper_stats`]: the mean is exact and p95/p99 are control
    /// points of the quantile function.
    pub fn service_dist(&self) -> PiecewiseQuantile {
        let (mean, p95, p99) = self.paper_stats();
        let lo = mean * 0.12;
        let body = p95 * 0.5;
        PiecewiseQuantile::new(vec![
            (0.0, lo),
            (0.5, (lo + body) / 2.0), // calibrated below
            (0.9, body),
            (0.95, p95),
            (0.99, p99),
            (1.0, p99 * 1.15),
        ])
        // tg-lint: allow(unwrap-in-lib) -- control points are compile-time constants; failing fast here surfaces a data bug the tests pin
        .expect("valid control points")
        .calibrate_mean(1, mean)
        // tg-lint: allow(unwrap-in-lib) -- Table III means are reachable for these fixed control points by construction
        .expect("mean reachable")
    }
}

/// §IV.E: the heterogeneous Sensing-as-a-Service scenario, as a simulation
/// twin of the tokio testbed.
///
/// * 32 edge nodes in 4 clusters of 8 with distinct service distributions,
/// * class A (50 % of queries, SLO 800 ms): fanout 1, 80 % pinned to the
///   Server-room cluster, 20 % on a random node of the other clusters,
/// * class B (40 %, SLO 1300 ms): fanout 4, one random node per cluster,
/// * class C (10 %, SLO 1800 ms): fanout 32, every node.
pub fn sas_testbed() -> Scenario {
    let dists: Vec<DynDistribution> = SasCluster::ALL
        .iter()
        .flat_map(|c| {
            let d: DynDistribution = Arc::new(c.service_dist());
            std::iter::repeat_n(d, 8)
        })
        .collect();
    let cluster = ClusterSpec::heterogeneous(dists);

    let mix = QueryMix::new(vec![
        tailguard_workload::ClassShare {
            class: 0,
            probability: 0.5,
            fanout: FanoutDist::fixed(1),
        },
        tailguard_workload::ClassShare {
            class: 1,
            probability: 0.4,
            fanout: FanoutDist::fixed(4),
        },
        tailguard_workload::ClassShare {
            class: 2,
            probability: 0.1,
            fanout: FanoutDist::fixed(32),
        },
    ]);

    let placement = Arc::new(
        |rng: &mut tailguard_simcore::SimRng, class: u8, fanout: u32| -> Vec<u32> {
            match class {
                0 => {
                    // 80% on the Server-room cluster, 20% elsewhere.
                    if rng.chance(0.8) {
                        // tg-lint: allow(lossy-cast) -- `rng.index(n)` returns a value below n <= 32, well within u32
                        vec![rng.index(8) as u32]
                    } else {
                        // tg-lint: allow(lossy-cast) -- `rng.index(n)` returns a value below n <= 32, well within u32
                        vec![(8 + rng.index(24)) as u32]
                    }
                }
                // tg-lint: allow(lossy-cast) -- `rng.index(n)` returns a value below n <= 32, well within u32
                1 => (0..4).map(|c| (c * 8 + rng.index(8)) as u32).collect(),
                _ => (0..fanout).collect(),
            }
        },
    );

    // Placement-weighted mean work per task.
    let cluster_means: Vec<f64> = SasCluster::ALL
        .iter()
        .map(|c| c.service_dist().mean())
        .collect();
    let other_mean = (cluster_means[1] + cluster_means[2] + cluster_means[3]) / 3.0;
    let class_a_task = 0.8 * cluster_means[0] + 0.2 * other_mean;
    let per_cluster_avg = cluster_means.iter().sum::<f64>() / 4.0;
    // E[k] = 0.5·1 + 0.4·4 + 0.1·32 ; mean work = Σ p·k·work_k / E[k]
    let ek = 0.5 + 0.4 * 4.0 + 0.1 * 32.0;
    let mean_task_work_ms =
        (0.5 * class_a_task + 0.4 * 4.0 * per_cluster_avg + 0.1 * 32.0 * per_cluster_avg) / ek;

    Scenario {
        label: "SaS testbed twin (4 heterogeneous clusters)".to_string(),
        cluster,
        classes: vec![
            ClassSpec::p99(ms(800.0)),
            ClassSpec::p99(ms(1300.0)),
            ClassSpec::p99(ms(1800.0)),
        ],
        mix,
        arrival: ArrivalProcess::poisson(1.0),
        mean_task_work_ms,
        placement: Some(placement),
        seed: 0x5A5,
        drift: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_dist::Cdf;

    #[test]
    fn single_class_shape() {
        let s = single_class(TailbenchWorkload::Shore, 7.0, 100);
        assert_eq!(s.cluster.servers(), 100);
        assert_eq!(s.classes.len(), 1);
        assert!((s.mean_task_work_ms - 0.341).abs() < 1e-9);
        assert!((s.mean_fanout() - 300.0 / 111.0).abs() < 1e-9);
    }

    #[test]
    fn two_class_slos_scale() {
        let s = two_class(
            TailbenchWorkload::Masstree,
            1.0,
            ArrivalProcess::poisson(1.0),
        );
        assert_eq!(s.classes.len(), 2);
        assert_eq!(s.classes[1].slo, ms(1.5));
    }

    #[test]
    fn fig6_slo_table() {
        assert_eq!(fig6_slos(TailbenchWorkload::Masstree), (1.0, 1.5));
        assert_eq!(fig6_slos(TailbenchWorkload::Shore), (6.0, 10.0));
        assert_eq!(fig6_slos(TailbenchWorkload::Xapian), (10.0, 15.0));
    }

    #[test]
    fn oldi_fixed_fanout() {
        let s = oldi_two_class(TailbenchWorkload::Xapian, 10.0, 15.0);
        assert_eq!(s.mean_fanout(), 100.0);
    }

    #[test]
    fn n1000_scaled_mix() {
        let s = n1000_single_class(TailbenchWorkload::Masstree, 1.0);
        assert_eq!(s.cluster.servers(), 1000);
        assert_eq!(s.mix.max_fanout(), 1000);
    }

    #[test]
    fn four_class_slo_ladder() {
        let s = four_class(TailbenchWorkload::Masstree, 1.0);
        let slos: Vec<f64> = s.classes.iter().map(|c| c.slo.as_millis_f64()).collect();
        assert_eq!(slos, vec![1.0, 1.5, 2.0, 3.0]);
    }

    #[test]
    fn sas_cluster_calibration() {
        for c in SasCluster::ALL {
            let (mean, p95, p99) = c.paper_stats();
            let d = c.service_dist();
            assert!((d.mean() - mean).abs() < 1e-9, "{}: mean", c.name());
            assert!((d.quantile(0.95) - p95).abs() < 1e-9, "{}: p95", c.name());
            assert!((d.quantile(0.99) - p99).abs() < 1e-9, "{}: p99", c.name());
        }
    }

    #[test]
    fn sas_wetlab_is_fastest() {
        let wet = SasCluster::WetLab.service_dist().mean();
        for c in [SasCluster::ServerRoom, SasCluster::Faculty, SasCluster::Gta] {
            assert!(wet < c.service_dist().mean(), "{}", c.name());
        }
    }

    #[test]
    fn sas_scenario_placement_rules() {
        let s = sas_testbed();
        let place = s.placement.as_ref().expect("sas has placement").clone();
        let mut rng = tailguard_simcore::SimRng::seed(3);
        // Class A: single server; mostly server-room.
        let mut in_server_room = 0;
        for _ in 0..10_000 {
            let p = place(&mut rng, 0, 1);
            assert_eq!(p.len(), 1);
            assert!(p[0] < 32);
            if p[0] < 8 {
                in_server_room += 1;
            }
        }
        let frac = in_server_room as f64 / 10_000.0;
        assert!((frac - 0.8).abs() < 0.02, "server-room frac {frac}");
        // Class B: one node per cluster.
        for _ in 0..100 {
            let p = place(&mut rng, 1, 4);
            assert_eq!(p.len(), 4);
            for (c, &s) in p.iter().enumerate() {
                assert!((s as usize) / 8 == c, "task {c} on server {s}");
            }
        }
        // Class C: all nodes.
        let p = place(&mut rng, 2, 32);
        assert_eq!(p, (0..32).collect::<Vec<u32>>());
    }

    #[test]
    fn sas_server_ranges() {
        assert_eq!(SasCluster::ServerRoom.server_range(), 0..8);
        assert_eq!(SasCluster::Gta.server_range(), 24..32);
    }

    #[test]
    fn sas_mean_task_work_reasonable() {
        let s = sas_testbed();
        // Between the fastest and slowest cluster means.
        assert!(s.mean_task_work_ms > 31.0 && s.mean_task_work_ms < 92.0);
    }
}

//! Request-level task decomposition — the Eq. (7) extension (§III.B
//! "A remark on meeting request tail latency SLO").
//!
//! A request is `M` queries issued sequentially, so the request response
//! time is the *sum* of the query response times. Tail percentiles do not
//! add (`x_p^R,SLO ≤ Σ x_p,i^SLO`), but the paper shows the pre-dequeuing
//! budgets do:
//!
//! ```text
//! x_p^R = x_p^{R,u} + Σ_i t_pr,i          (Eq. 7)
//! T_b^R = x_p^{R,SLO} − x_p^{R,u} = Σ_i T_b,i
//! ```
//!
//! where `x_p^{R,u}` is the `p`-th percentile of the *unloaded* request
//! latency (the convolution of the per-query unloaded latencies).
//! [`RequestPlanner`] estimates `x_p^{R,u}` by Monte Carlo over the
//! per-query order statistics and splits the request budget `T_b^R` across
//! queries — equally (the paper's open question's natural baseline) or
//! proportionally to each query's unloaded tail (an ablation).

use crate::spec::{ClusterSpec, QuerySpec, RequestInput};
use tailguard_sched::units;
use tailguard_simcore::{SimDuration, SimRng, SimTime};

/// How a request-level budget is divided among its queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetSplit {
    /// `T_b,i = T_b^R / M` for all `i`.
    Equal,
    /// `T_b,i ∝ x_p^u(k_i)` — queries with heavier unloaded tails get more
    /// slack.
    ProportionalToTail,
}

/// Per-query budgets derived from a request-level SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestBudgets {
    /// The unloaded request tail `x_p^{R,u}` the plan is based on.
    pub unloaded_request_tail: SimDuration,
    /// The total request budget `T_b^R = x_p^{R,SLO} − x_p^{R,u}` (zero when
    /// the SLO is infeasible even unloaded).
    pub total: SimDuration,
    /// One pre-dequeuing budget per query; sums to `total` (± rounding).
    pub per_query: Vec<SimDuration>,
}

/// Plans per-query budgets for sequential multi-query requests.
///
/// # Example
///
/// ```
/// use tailguard::{ClusterSpec, RequestPlanner};
/// use tailguard_simcore::SimDuration;
/// use tailguard_workload::TailbenchWorkload;
///
/// let cluster = ClusterSpec::homogeneous(100, TailbenchWorkload::Masstree.service_dist());
/// let planner = RequestPlanner::new(0.99, 200_000, 1);
/// let budgets = planner.plan(
///     &cluster,
///     &[10, 100],                       // two queries: fanout 10 then 100
///     SimDuration::from_millis_f64(2.0), // request-level p99 SLO
///     tailguard::BudgetSplit::Equal,
/// );
/// assert_eq!(budgets.per_query.len(), 2);
/// assert!(budgets.total > SimDuration::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct RequestPlanner {
    percentile: f64,
    mc_samples: usize,
    seed: u64,
}

impl RequestPlanner {
    /// Creates a planner estimating tails at `percentile` with `mc_samples`
    /// Monte-Carlo draws.
    ///
    /// # Panics
    ///
    /// Panics unless `percentile ∈ (0, 1)` and `mc_samples > 0`.
    pub fn new(percentile: f64, mc_samples: usize, seed: u64) -> Self {
        assert!(
            percentile > 0.0 && percentile < 1.0,
            "percentile must lie in (0,1)"
        );
        assert!(mc_samples > 0, "need at least one sample");
        RequestPlanner {
            percentile,
            mc_samples,
            seed,
        }
    }

    /// Draws one unloaded request latency: the sum over queries of the max
    /// over that query's fanout of task service draws (homogeneous cluster).
    fn draw_unloaded_request_ms(
        &self,
        cluster: &ClusterSpec,
        fanouts: &[u32],
        rng: &mut SimRng,
    ) -> f64 {
        fanouts
            .iter()
            .map(|&k| {
                let mut worst: f64 = 0.0;
                for _ in 0..k {
                    // Uniform placement: sample a random server's dist.
                    let s = rng.index(cluster.servers());
                    worst = worst.max(cluster.service_of(s).sample(rng));
                }
                worst
            })
            .sum()
    }

    /// Monte-Carlo estimate of the unloaded request tail `x_p^{R,u}` for a
    /// request of queries with the given fanouts, in ms.
    ///
    /// # Panics
    ///
    /// Panics when `fanouts` is empty or contains a zero.
    pub fn unloaded_request_tail_ms(&self, cluster: &ClusterSpec, fanouts: &[u32]) -> f64 {
        assert!(!fanouts.is_empty(), "request needs at least one query");
        assert!(fanouts.iter().all(|&k| k >= 1), "fanouts must be positive");
        let mut rng = SimRng::seed(self.seed);
        let mut samples: Vec<f64> = (0..self.mc_samples)
            .map(|_| self.draw_unloaded_request_ms(cluster, fanouts, &mut rng))
            .collect();
        samples.sort_by(f64::total_cmp);
        let rank = units::trunc_f64_to_usize((self.percentile * samples.len() as f64).ceil());
        // tg-lint: allow(panic-surface) -- guarded: `rank` is clamped to 1..=len and `samples` holds mc_samples (> 0) draws
        samples[rank.clamp(1, samples.len()) - 1]
    }

    /// Splits the request budget `T_b^R = slo − x_p^{R,u}` across the
    /// queries (Eq. 7's additive property makes any split SLO-safe; the
    /// split changes only resource efficiency).
    /// `request_slo` is a virtual-time duration (nanosecond domain).
    /// `request_slo` is a virtual-time duration (nanosecond domain).
    pub fn plan(
        &self,
        cluster: &ClusterSpec,
        fanouts: &[u32],
        request_slo: SimDuration,
        split: BudgetSplit,
    ) -> RequestBudgets {
        let unloaded =
            SimDuration::from_millis_f64(self.unloaded_request_tail_ms(cluster, fanouts));
        let total = request_slo.saturating_sub(unloaded);
        let m = fanouts.len() as u64;
        let per_query = match split {
            BudgetSplit::Equal => vec![total / m; fanouts.len()],
            BudgetSplit::ProportionalToTail => {
                // Weight by each query's own unloaded tail.
                let weights: Vec<f64> = fanouts
                    .iter()
                    .map(|&k| self.unloaded_request_tail_ms(cluster, &[k]))
                    .collect();
                let sum: f64 = weights.iter().sum();
                weights.iter().map(|w| total.mul_f64(w / sum)).collect()
            }
        };
        RequestBudgets {
            unloaded_request_tail: unloaded,
            total,
            per_query,
        }
    }

    /// Builds a [`RequestInput`] whose queries carry the planned budget
    /// overrides — ready to feed to [`crate::run_simulation`].
    pub fn request_input(
        &self,
        arrival: SimTime,
        class: u8,
        fanouts: &[u32],
        budgets: &RequestBudgets,
    ) -> RequestInput {
        assert_eq!(
            fanouts.len(),
            budgets.per_query.len(),
            "budget count must match query count"
        );
        RequestInput {
            arrival,
            queries: fanouts
                .iter()
                .zip(&budgets.per_query)
                .map(|(&fanout, &budget)| QuerySpec {
                    class,
                    fanout,
                    servers: None,
                    budget_override: Some(budget),
                    task_budgets: None,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_workload::TailbenchWorkload;

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(100, TailbenchWorkload::Masstree.service_dist())
    }

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis_f64(v)
    }

    #[test]
    fn single_query_request_matches_order_statistics() {
        // For M=1 the MC estimate must agree with Eq. 2's closed form.
        let planner = RequestPlanner::new(0.99, 400_000, 7);
        let mc = planner.unloaded_request_tail_ms(&cluster(), &[10]);
        let analytic = TailbenchWorkload::Masstree.unloaded_query_tail(0.99, 10);
        assert!(
            (mc - analytic).abs() / analytic < 0.03,
            "mc={mc} analytic={analytic}"
        );
    }

    #[test]
    fn request_tail_subadditive_for_concentrated_components() {
        // x_p^{R,u} < Σ x_p,i^u when the per-query latency concentrates
        // (max over a large fanout) — the paper's "in general" inequality
        // that motivates request-level budgeting over naive SLO splitting.
        // (For extremely skewed components quantile subadditivity can fail,
        // which is precisely why Eq. 7 works with budgets, not quantiles.)
        let planner = RequestPlanner::new(0.99, 200_000, 8);
        let joint = planner.unloaded_request_tail_ms(&cluster(), &[100, 100]);
        let single = planner.unloaded_request_tail_ms(&cluster(), &[100]);
        assert!(
            joint < 2.0 * single,
            "joint={joint} vs 2×single={}",
            2.0 * single
        );
        // But more than one query's worth.
        assert!(joint > 1.2 * single, "joint={joint} single={single}");
    }

    #[test]
    fn equal_split_sums_to_total() {
        let planner = RequestPlanner::new(0.99, 100_000, 9);
        let b = planner.plan(&cluster(), &[1, 10, 100], ms(3.0), BudgetSplit::Equal);
        let sum: SimDuration = b.per_query.iter().copied().sum();
        let diff = sum.as_nanos().abs_diff(b.total.as_nanos());
        assert!(diff <= 3, "rounding drift {diff}ns");
        assert!(b.per_query.iter().all(|&x| x == b.per_query[0]));
    }

    #[test]
    fn proportional_split_favors_heavy_queries() {
        let planner = RequestPlanner::new(0.99, 100_000, 10);
        let b = planner.plan(
            &cluster(),
            &[1, 100],
            ms(3.0),
            BudgetSplit::ProportionalToTail,
        );
        assert!(
            b.per_query[1] > b.per_query[0],
            "fanout-100 query should get the larger slice: {:?}",
            b.per_query
        );
        let sum: SimDuration = b.per_query.iter().copied().sum();
        let rel =
            (sum.as_nanos() as f64 - b.total.as_nanos() as f64).abs() / b.total.as_nanos() as f64;
        assert!(rel < 1e-6, "split must conserve the total");
    }

    #[test]
    fn infeasible_slo_gives_zero_budget() {
        let planner = RequestPlanner::new(0.99, 50_000, 11);
        let b = planner.plan(
            &cluster(),
            &[100, 100],
            SimDuration::from_micros(10),
            BudgetSplit::Equal,
        );
        assert_eq!(b.total, SimDuration::ZERO);
        assert!(b.per_query.iter().all(|&x| x.is_zero()));
    }

    #[test]
    fn request_input_carries_overrides() {
        let planner = RequestPlanner::new(0.99, 50_000, 12);
        let budgets = planner.plan(&cluster(), &[10, 100], ms(3.0), BudgetSplit::Equal);
        let input = planner.request_input(SimTime::ZERO, 0, &[10, 100], &budgets);
        assert_eq!(input.queries.len(), 2);
        assert_eq!(input.queries[0].budget_override, Some(budgets.per_query[0]));
        assert_eq!(input.queries[1].fanout, 100);
    }

    #[test]
    fn eq7_additivity_end_to_end() {
        // Validate Eq. 7's core identity by simulation: a request whose
        // tasks are each delayed exactly t_pr,i before dequeue has loaded
        // tail ≈ unloaded tail + Σ t_pr,i. We emulate fixed pre-dequeue
        // delay by adding it analytically (the equation is deterministic in
        // t_pr given the unloaded distribution).
        let planner = RequestPlanner::new(0.99, 300_000, 13);
        let c = cluster();
        let unloaded = planner.unloaded_request_tail_ms(&c, &[10, 100]);
        // With per-query fixed pre-dequeue delays 0.2ms and 0.3ms, the
        // loaded request tail is the same MC percentile shifted by 0.5ms.
        let mut rng = SimRng::seed(13);
        let mut samples: Vec<f64> = (0..300_000)
            .map(|_| planner.draw_unloaded_request_ms(&c, &[10, 100], &mut rng) + 0.2 + 0.3)
            .collect();
        samples.sort_by(f64::total_cmp);
        let loaded = samples[(0.99 * samples.len() as f64).ceil() as usize - 1];
        assert!(
            (loaded - (unloaded + 0.5)).abs() < 0.03,
            "loaded={loaded} unloaded+0.5={}",
            unloaded + 0.5
        );
    }

    #[test]
    #[should_panic(expected = "request needs at least one query")]
    fn empty_request_rejected() {
        let planner = RequestPlanner::new(0.99, 100, 1);
        let _ = planner.unloaded_request_tail_ms(&cluster(), &[]);
    }
}

//! Shared configuration types: service classes, clusters, admission control.
//!
//! These types used to live in the simulator crate; they moved here so the
//! simulator and the tokio testbed configure the *same* scheduling core.

use std::fmt;
use std::sync::Arc;
use tailguard_dist::{Distribution, DynDistribution};
use tailguard_simcore::SimDuration;

/// A service class: a tail-latency SLO at a percentile.
///
/// The paper expresses SLOs as "the `p`-th percentile query latency must not
/// exceed `x_p^SLO`"; the evaluation uses `p = 99` throughout.
///
/// # Example
///
/// ```
/// use tailguard_sched::ClassSpec;
/// use tailguard_simcore::SimDuration;
///
/// let class = ClassSpec::p99(SimDuration::from_millis_f64(1.0));
/// assert_eq!(class.percentile, 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSpec {
    /// The tail latency SLO `x_p^SLO`.
    pub slo: SimDuration,
    /// The percentile `p` as a fraction in (0, 1), e.g. `0.99`.
    pub percentile: f64,
}

impl ClassSpec {
    /// Creates a class SLO.
    ///
    /// # Panics
    ///
    /// Panics unless `percentile ∈ (0, 1)` and the SLO is positive.
    /// `slo` is a virtual-time duration (nanosecond domain).
    pub fn new(slo: SimDuration, percentile: f64) -> Self {
        assert!(
            percentile > 0.0 && percentile < 1.0,
            "percentile must lie in (0,1)"
        );
        assert!(!slo.is_zero(), "SLO must be positive");
        ClassSpec { slo, percentile }
    }

    /// A 99th-percentile SLO — the paper's standard setting.
    /// `slo` is a virtual-time duration (nanosecond domain).
    pub fn p99(slo: SimDuration) -> Self {
        ClassSpec::new(slo, 0.99)
    }

    /// This class's SLO scaled by `factor` (e.g. the paper's lower class at
    /// `1.5 × x99`).
    pub fn scaled(&self, factor: f64) -> Self {
        ClassSpec::new(self.slo.mul_f64(factor), self.percentile)
    }
}

/// The task-server cluster: size and per-server unloaded service-time
/// distributions.
#[derive(Clone)]
pub struct ClusterSpec {
    servers: usize,
    service: Vec<DynDistribution>,
}

impl fmt::Debug for ClusterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterSpec")
            .field("servers", &self.servers)
            .field("heterogeneous", &(self.service.len() > 1))
            .finish()
    }
}

impl ClusterSpec {
    /// A homogeneous cluster: `n` servers sharing one service distribution
    /// (the paper's simulation setting, §IV.A).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn homogeneous(n: usize, service: impl Distribution + 'static) -> Self {
        assert!(n > 0, "cluster needs at least one server");
        ClusterSpec {
            servers: n,
            service: vec![Arc::new(service)],
        }
    }

    /// A heterogeneous cluster with one distribution per server (the SaS
    /// testbed setting, §IV.E).
    ///
    /// # Panics
    ///
    /// Panics when `dists` is empty.
    pub fn heterogeneous(dists: Vec<DynDistribution>) -> Self {
        assert!(!dists.is_empty(), "cluster needs at least one server");
        ClusterSpec {
            servers: dists.len(),
            service: dists,
        }
    }

    /// Number of task servers `N`.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The service distribution of server `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= servers()`.
    pub fn service_of(&self, i: usize) -> &DynDistribution {
        assert!(i < self.servers, "server index out of range");
        if self.service.len() == 1 {
            &self.service[0]
        } else {
            // tg-lint: allow(panic-surface) -- asserted `i < servers` above; `service` holds 1 or `servers` entries by construction
            &self.service[i]
        }
    }

    /// True when all servers share one distribution.
    pub fn is_homogeneous(&self) -> bool {
        self.service.len() == 1
    }

    /// Mean task service time averaged over servers, in ms.
    pub fn mean_service_ms(&self) -> f64 {
        if self.service.len() == 1 {
            self.service[0].mean()
        } else {
            self.service.iter().map(|d| d.mean()).sum::<f64>() / self.service.len() as f64
        }
    }
}

/// Query admission control parameters (§III.C).
///
/// The paper: "The query handler can update the task deadline violation
/// ratio in a given moving time window. When the ratio exceeds R_th,
/// upcoming queries are rejected, till the ratio falls back below R_th
/// again. The moving time window can be set to be the same as the time
/// window in which the tail latency SLOs should be guaranteed."
///
/// The window defaults to the *time*-based measurement the paper specifies;
/// [`AdmissionConfig::with_count_window`] switches to a count-based window
/// over the most recent dequeue outcomes instead (the paper describes the
/// window abstractly; both readings are implemented). A count window never
/// ages events out on its own, so under total rejection it would freeze
/// above the threshold; the controller therefore also treats `window` as a
/// max-freeze duration — after that long with no dequeue at all, the stale
/// count window is cleared and admission resumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Moving *time* window over task-dequeue outcomes (the paper sizes it
    /// as 1 000 queries' worth of time for the Masstree OLDI case). When
    /// `count_window` is set it is reused as the count window's max-freeze
    /// duration: after `window` with no dequeue event, the frozen ratio is
    /// discarded and admission resumes.
    pub window: SimDuration,
    /// Deadline-violation ratio threshold `R_th` above which new queries
    /// are rejected (the paper finds 1.7 % at the maximum acceptable load).
    pub threshold: f64,
    /// Minimum dequeue events inside the window before the controller may
    /// reject (guards against noise right after start-up or idle spells).
    pub min_samples: usize,
    /// Hysteresis: once rejecting, admission resumes only when the ratio
    /// falls below `resume_threshold` (≤ `threshold`), letting the backlog
    /// drain before new load is accepted. Defaults to `threshold` (no
    /// hysteresis).
    pub resume_threshold: f64,
    /// When set, measure the miss ratio over the most recent `n` dequeue
    /// outcomes (a count window) instead of the moving time window.
    pub count_window: Option<usize>,
}

impl AdmissionConfig {
    /// Creates an admission-control configuration with a default
    /// `min_samples` of 50 and the paper's time-based window.
    ///
    /// # Panics
    ///
    /// Panics unless the window is positive and the threshold lies in
    /// `(0, 1)`.
    /// `window` is a virtual-time duration (nanosecond domain).
    pub fn new(window: SimDuration, threshold: f64) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must lie in (0,1)"
        );
        AdmissionConfig {
            window,
            threshold,
            min_samples: 50,
            resume_threshold: threshold,
            count_window: None,
        }
    }

    /// Overrides the minimum sample count (builder-style).
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// Enables hysteresis (builder-style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < resume_threshold <= threshold`.
    pub fn with_resume_threshold(mut self, resume_threshold: f64) -> Self {
        assert!(
            resume_threshold > 0.0 && resume_threshold <= self.threshold,
            "resume threshold must lie in (0, threshold]"
        );
        self.resume_threshold = resume_threshold;
        self
    }

    /// Measures the miss ratio over the most recent `n` dequeue outcomes
    /// instead of a moving time window (builder-style).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn with_count_window(mut self, n: usize) -> Self {
        assert!(n > 0, "count window must be positive");
        self.count_window = Some(n);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_dist::Deterministic;

    #[test]
    fn class_spec_validation() {
        let c = ClassSpec::p99(SimDuration::from_millis(1));
        assert_eq!(c.percentile, 0.99);
        let low = c.scaled(1.5);
        assert_eq!(low.slo, SimDuration::from_micros(1500));
    }

    #[test]
    #[should_panic(expected = "percentile must lie in (0,1)")]
    fn class_spec_rejects_bad_percentile() {
        let _ = ClassSpec::new(SimDuration::from_millis(1), 1.0);
    }

    #[test]
    fn homogeneous_cluster_shares_distribution() {
        let c = ClusterSpec::homogeneous(10, Deterministic::new(0.5));
        assert_eq!(c.servers(), 10);
        assert!(c.is_homogeneous());
        assert_eq!(c.mean_service_ms(), 0.5);
        assert_eq!(c.service_of(9).mean(), 0.5);
    }

    #[test]
    fn heterogeneous_cluster_per_server() {
        let c = ClusterSpec::heterogeneous(vec![
            Arc::new(Deterministic::new(1.0)) as DynDistribution,
            Arc::new(Deterministic::new(3.0)),
        ]);
        assert!(!c.is_homogeneous());
        assert_eq!(c.mean_service_ms(), 2.0);
        assert_eq!(c.service_of(1).mean(), 3.0);
    }

    #[test]
    #[should_panic(expected = "server index out of range")]
    fn service_of_bounds() {
        let c = ClusterSpec::homogeneous(2, Deterministic::new(1.0));
        let _ = c.service_of(2);
    }

    #[test]
    fn admission_config_validation() {
        let a = AdmissionConfig::new(SimDuration::from_millis(10), 0.017).with_min_samples(10);
        assert_eq!(a.window, SimDuration::from_millis(10));
        assert_eq!(a.min_samples, 10);
        assert_eq!(a.count_window, None);
    }

    #[test]
    #[should_panic(expected = "threshold must lie in (0,1)")]
    fn admission_rejects_bad_threshold() {
        let _ = AdmissionConfig::new(SimDuration::from_millis(10), 1.5);
    }

    #[test]
    fn admission_count_window_builder() {
        let a = AdmissionConfig::new(SimDuration::from_millis(10), 0.02).with_count_window(500);
        assert_eq!(a.count_window, Some(500));
    }

    #[test]
    #[should_panic(expected = "count window must be positive")]
    fn admission_rejects_zero_count_window() {
        let _ = AdmissionConfig::new(SimDuration::from_millis(10), 0.02).with_count_window(0);
    }

    #[test]
    #[should_panic(expected = "resume threshold must lie in (0, threshold]")]
    fn admission_rejects_bad_resume_threshold() {
        let _ = AdmissionConfig::new(SimDuration::from_millis(10), 0.02).with_resume_threshold(0.5);
    }
}

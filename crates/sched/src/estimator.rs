//! Task queuing deadline estimation — the paper's task decomposition
//! (§III.B).
//!
//! For a query of class `c` (SLO `x_p^SLO`) with fanout `k_f` dispatched to
//! a known set of servers, the estimator computes the *task pre-dequeuing
//! time budget*
//!
//! ```text
//! T_b = x_p^SLO − x_p^u(k_f)                        (Eq. 6)
//! ```
//!
//! where `x_p^u(k_f)` solves `Π_l F_l^u(t) = p` over the unloaded
//! response-time CDFs of the chosen servers (Eqs. 1–2). The query handler
//! then stamps every task of the query with the deadline `t_D = t_0 + T_b`.
//!
//! Two CDF sources are supported, mirroring §III.B.2:
//!
//! * [`EstimatorMode::Analytic`] — the true service distributions of the
//!   cluster (the idealized simulation setting),
//! * [`EstimatorMode::Online`] — per-group streaming histograms seeded by an
//!   offline estimation pass and updated as task results return, with
//!   budgets recomputed in the background every `refresh_every` samples.
//!
//! Servers are organized into *groups* sharing a CDF (all servers in the
//! homogeneous simulations; one group per hardware cluster in the SaS
//! testbed — "we let all 8 edge nodes in each cluster share the same CDF").
//! Budgets are cached per `(class, group-multiset)`, so the steady-state
//! cost of a deadline is one hash lookup — the "lightweight" property the
//! paper claims.

use crate::config::{ClassSpec, ClusterSpec};
// tg-lint: allow(hash-order) -- imported only for the lookup-only Memo alias below
use std::collections::HashMap;
use std::sync::Arc;
use tailguard_dist::{order_stats, Cdf, CdfSnapshot, DynDistribution, LogHistogram};
use tailguard_simcore::{SimDuration, SimRng};

/// Budget/tail memo keyed by `(class, group occupancy)`. Accessed only
/// point-wise (`get`/`insert`/`clear`/`len`) on the per-query hot path —
/// never iterated, so the hash order cannot leak into any result. A
/// `BTreeMap` here would put an `O(log n)` walk on every deadline stamp.
// tg-lint: allow(hash-order) -- lookup-only memo, never iterated; hot-path point access
type Memo = HashMap<(u8, GroupKey), SimDuration>;

/// Where the estimator's per-server CDFs come from.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorMode {
    /// Use the cluster's true service distributions (idealized; the
    /// simulation setting of §IV.B–D).
    Analytic,
    /// Maintain per-group streaming histograms updated from observed task
    /// post-queuing times (§III.B.2).
    Online {
        /// Recompute cached budgets after this many new observations.
        refresh_every: u64,
        /// Samples drawn per group in the offline seeding pass
        /// ([`DeadlineEstimator::seed_offline`]).
        offline_samples: usize,
    },
}

impl EstimatorMode {
    /// The default online configuration: refresh every 10 000 observations,
    /// seed with 100 000 offline samples per group.
    pub fn online_default() -> Self {
        EstimatorMode::Online {
            refresh_every: 10_000,
            offline_samples: 100_000,
        }
    }
}

/// Windowed/decayed CDF adaptation for [`EstimatorMode::Online`].
///
/// A cumulative online histogram never forgets: after a server degrades,
/// `x_p^u(k)` converges to the *average* of the pre- and post-shift
/// distributions instead of the current one, so stamped deadlines stay
/// wrong forever. With an adaptive window, every `window` observations the
/// histograms are decayed by `decay` (exponential forgetting of old mass)
/// and the budget caches are invalidated, so quantiles re-converge to the
/// shifted distribution at a rate set by `(window, decay)`.
///
/// Disabled (`None` on the estimator) by default — runs without it are
/// bit-identical to pre-adaptive ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveWindow {
    /// Observations between window rolls.
    pub window: u64,
    /// Multiplier applied to every histogram bucket at each roll
    /// (`0 ≤ decay < 1`; 0 forgets everything, 0.5 halves old mass).
    pub decay: f64,
}

impl AdaptiveWindow {
    /// Creates an adaptive window.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero or `decay` is outside `[0, 1)`.
    pub fn new(window: u64, decay: f64) -> Self {
        assert!(
            window >= 1,
            "adaptive window must be at least 1 observation"
        );
        assert!(
            decay.is_finite() && (0.0..1.0).contains(&decay),
            "adaptive decay must lie in [0, 1), got {decay}"
        );
        AdaptiveWindow { window, decay }
    }
}

/// Distinct groups stored inline in a [`GroupKey`] before spilling to the
/// heap. Every homogeneous scenario uses one group and the SaS testbed
/// uses three, so steady-state budget lookups allocate nothing.
const INLINE_GROUPS: usize = 4;

/// A multiset of server groups, canonicalized as `(group, count)` pairs
/// sorted by group id — the cache key for budgets.
///
/// Construction is canonical: keys with at most [`INLINE_GROUPS`] distinct
/// groups are always `Inline` (with zeroed padding), larger ones always
/// `Heap`, so derived `Eq`/`Hash` never have to compare across variants.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum GroupKey {
    Inline {
        len: u8,
        pairs: [(u32, u32); INLINE_GROUPS],
    },
    Heap(Vec<(u32, u32)>),
}

impl GroupKey {
    /// A single-group key — the homogeneous-cluster fast path.
    fn single(group: u32, count: u32) -> GroupKey {
        let mut pairs = [(0u32, 0u32); INLINE_GROUPS];
        pairs[0] = (group, count);
        GroupKey::Inline { len: 1, pairs }
    }

    /// Builds a key from pairs already sorted by group id.
    fn from_sorted_pairs<I: Iterator<Item = (u32, u32)>>(mut iter: I) -> GroupKey {
        let mut pairs = [(0u32, 0u32); INLINE_GROUPS];
        let mut len = 0usize;
        for p in iter.by_ref() {
            if len == INLINE_GROUPS {
                let mut v = pairs.to_vec();
                v.push(p);
                v.extend(iter);
                return GroupKey::Heap(v);
            }
            // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
            pairs[len] = p;
            len += 1;
        }
        GroupKey::Inline {
            // tg-lint: allow(lossy-cast) -- group/server counts are far below 2^32 and inline key lengths below the u8 cap
            len: len as u8,
            pairs,
        }
    }

    /// The `(group, count)` pairs, sorted by group id.
    fn as_pairs(&self) -> &[(u32, u32)] {
        match self {
            // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
            GroupKey::Inline { len, pairs } => &pairs[..*len as usize],
            GroupKey::Heap(v) => v,
        }
    }
}

enum CdfSource {
    Analytic(Vec<DynDistribution>), // one per group
    Online(Vec<Arc<CdfSnapshot>>),  // one per group
}

/// Computes task pre-dequeuing budgets `T_b(x_p^SLO, k_f)` (Eq. 6).
///
/// # Example
///
/// ```
/// use tailguard_sched::{ClassSpec, ClusterSpec, DeadlineEstimator, EstimatorMode};
/// use tailguard_simcore::SimDuration;
/// use tailguard_workload::TailbenchWorkload;
///
/// let cluster = ClusterSpec::homogeneous(100, TailbenchWorkload::Masstree.service_dist());
/// let classes = vec![ClassSpec::p99(SimDuration::from_millis_f64(1.0))];
/// let mut est = DeadlineEstimator::new(&cluster, classes, EstimatorMode::Analytic);
///
/// // Paper §IV.C: budget for class I at fanout 100 is 1 − 0.473 ≈ 0.527 ms.
/// let b = est.budget(0, 100, &[0; 0]); // empty server list = uniform placement
/// assert!((b.as_millis_f64() - 0.527).abs() < 0.01);
/// ```
pub struct DeadlineEstimator {
    classes: Vec<ClassSpec>,
    group_of: Vec<u32>,    // server -> group
    group_sizes: Vec<u32>, // group -> member count
    group_count: usize,
    source: CdfSource,
    hists: Vec<LogHistogram>, // per group; empty in analytic mode
    budget_cache: Memo,
    tail_cache: Memo,
    counts_scratch: Vec<u32>, // group -> count, reused across group_key calls
    budget_lookups: u64,
    refresh_every: u64,
    since_refresh: u64,
    refreshes: u64,
    adaptive: Option<AdaptiveWindow>,
    since_roll: u64,
    window_rolls: u64,
}

impl std::fmt::Debug for DeadlineEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeadlineEstimator")
            .field("classes", &self.classes.len())
            .field("groups", &self.group_count)
            .field("cached_budgets", &self.budget_cache.len())
            .field("refreshes", &self.refreshes)
            .finish()
    }
}

impl DeadlineEstimator {
    /// Creates an estimator for `cluster` and `classes`.
    ///
    /// Server groups are derived from the cluster: servers sharing the same
    /// distribution object form one group.
    ///
    /// In [`EstimatorMode::Online`] the histograms start empty — call
    /// [`DeadlineEstimator::seed_offline`] to run the offline estimation
    /// pass before the first budget query, or budgets fall back to the
    /// analytic CDFs until data arrives.
    ///
    /// # Panics
    ///
    /// Panics when `classes` is empty.
    pub fn new(cluster: &ClusterSpec, classes: Vec<ClassSpec>, mode: EstimatorMode) -> Self {
        assert!(!classes.is_empty(), "need at least one class");
        // Group servers by distribution identity.
        let mut group_of = Vec::with_capacity(cluster.servers());
        let mut reps: Vec<DynDistribution> = Vec::new();
        for i in 0..cluster.servers() {
            let d = cluster.service_of(i);
            let gid = reps
                .iter()
                .position(|r| Arc::ptr_eq(r, d))
                .unwrap_or_else(|| {
                    reps.push(Arc::clone(d));
                    // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
                    reps.len() - 1
                });
            // tg-lint: allow(lossy-cast) -- group/server counts are far below 2^32 and inline key lengths below the u8 cap
            group_of.push(gid as u32);
        }
        let group_count = reps.len();
        let mut group_sizes = vec![0u32; group_count];
        for &g in &group_of {
            // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
            group_sizes[g as usize] += 1;
        }
        let (source, hists, refresh_every) = match mode {
            EstimatorMode::Analytic => (CdfSource::Analytic(reps), Vec::new(), u64::MAX),
            EstimatorMode::Online { refresh_every, .. } => (
                CdfSource::Analytic(reps), // fallback until seeded
                vec![LogHistogram::new(); group_count],
                refresh_every,
            ),
        };
        DeadlineEstimator {
            classes,
            group_of,
            group_sizes,
            group_count,
            source,
            hists,
            budget_cache: Memo::new(),
            tail_cache: Memo::new(),
            counts_scratch: vec![0; group_count],
            budget_lookups: 0,
            refresh_every,
            since_refresh: 0,
            refreshes: 0,
            adaptive: None,
            since_roll: 0,
            window_rolls: 0,
        }
    }

    /// Enables windowed/decayed CDF adaptation (builder-style). Only
    /// meaningful in [`EstimatorMode::Online`]; analytic estimators ignore
    /// observations entirely, so the window never rolls.
    pub fn with_adaptive(mut self, adaptive: AdaptiveWindow) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// Runs the paper's offline estimation process: samples each group's
    /// true distribution `samples` times into its histogram and switches the
    /// estimator onto the measured CDFs.
    ///
    /// No-op in analytic mode.
    pub fn seed_offline(&mut self, cluster: &ClusterSpec, samples: usize, rng: &mut SimRng) {
        if self.hists.is_empty() {
            return;
        }
        for server in 0..cluster.servers() {
            let g = self.group_of[server] as usize;
            // Spread samples evenly across the group's servers.
            // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
            let per_server = samples.div_ceil(self.group_sizes[g] as usize);
            let d = cluster.service_of(server);
            for _ in 0..per_server {
                // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
                self.hists[g].record(d.sample(rng));
            }
        }
        self.rebuild_snapshots();
    }

    /// Records an observed task post-queuing time for `server` (the online
    /// updating process). Cached budgets are refreshed every
    /// `refresh_every` observations.
    ///
    /// # Panics
    ///
    /// Panics when `server` is out of range.
    /// `t` is a virtual-time duration (nanosecond domain).
    pub fn record_post_queuing(&mut self, server: usize, t: SimDuration) {
        if self.hists.is_empty() {
            return; // analytic mode ignores observations
        }
        let g = self.group_of[server] as usize;
        // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
        self.hists[g].record(t.as_millis_f64());
        self.since_refresh += 1;
        if let Some(aw) = self.adaptive {
            self.since_roll += 1;
            if self.since_roll >= aw.window {
                self.roll_window(aw.decay);
                return;
            }
        }
        if self.since_refresh >= self.refresh_every {
            self.rebuild_snapshots();
        }
    }

    /// Decays every group histogram and rebuilds the snapshots + caches —
    /// the window-roll half of the online updating process. Old mass fades
    /// exponentially, so `x_p^u(k)` tracks the *current* distribution
    /// instead of the lifetime average.
    fn roll_window(&mut self, decay: f64) {
        for h in &mut self.hists {
            h.decay(decay);
        }
        self.rebuild_snapshots();
        self.since_roll = 0;
        self.window_rolls += 1;
    }

    fn rebuild_snapshots(&mut self) {
        let snaps: Vec<Arc<CdfSnapshot>> =
            self.hists.iter().map(|h| Arc::new(h.snapshot())).collect();
        // Only switch to measured CDFs once every group has data; otherwise
        // a fanout spanning an empty group would see cdf == 0 forever.
        if snaps.iter().all(|s| !s.is_empty()) {
            self.source = CdfSource::Online(snaps);
        }
        self.budget_cache.clear();
        self.tail_cache.clear();
        self.since_refresh = 0;
        self.refreshes += 1;
    }

    /// Number of background refreshes performed so far.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// Number of adaptive window rolls (decay + cache invalidation)
    /// performed so far. Always zero without [`AdaptiveWindow`].
    pub fn window_roll_count(&self) -> u64 {
        self.window_rolls
    }

    /// Forces an immediate snapshot rebuild and cache flush — used after an
    /// explicit offline calibration pass so budgets come from measured CDFs
    /// from the very first query. No-op in analytic mode.
    pub fn refresh_now(&mut self) {
        if !self.hists.is_empty() {
            self.rebuild_snapshots();
        }
    }

    /// The class table.
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    fn group_key(&mut self, fanout: u32, servers: &[u32]) -> GroupKey {
        if servers.is_empty() || self.group_count == 1 {
            // Uniform placement over a homogeneous cluster (or unknown
            // placement): all tasks belong to group 0's CDF.
            if self.group_count == 1 {
                return GroupKey::single(0, fanout);
            }
            // Unknown placement on a heterogeneous cluster: approximate by
            // spreading tasks across groups proportionally to group size.
            // tg-lint: allow(lossy-cast) -- group/server counts are far below 2^32 and inline key lengths below the u8 cap
            let n = self.group_of.len() as u32;
            let sizes = &self.group_sizes;
            return GroupKey::from_sorted_pairs(
                sizes
                    .iter()
                    .enumerate()
                    // tg-lint: allow(lossy-cast) -- group/server counts are far below 2^32 and inline key lengths below the u8 cap
                    .map(|(g, &members)| (g as u32, (fanout * members).div_ceil(n)))
                    .filter(|&(_, c)| c > 0),
            );
        }
        // Explicit placement: count tasks per group into the reusable
        // scratch (indexed by group id, hence already sorted).
        self.counts_scratch.iter_mut().for_each(|c| *c = 0);
        for &s in servers {
            // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
            self.counts_scratch[self.group_of[s as usize] as usize] += 1;
        }
        GroupKey::from_sorted_pairs(
            self.counts_scratch
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                // tg-lint: allow(lossy-cast) -- group/server counts are far below 2^32 and inline key lengths below the u8 cap
                .map(|(g, &c)| (g as u32, c)),
        )
    }

    /// The unloaded `p`-th percentile query tail latency `x_p^u(k_f)`
    /// (Eq. 2) for a query of `class` with `fanout` tasks on `servers`.
    ///
    /// Pass an empty `servers` slice for uniform placement on a homogeneous
    /// cluster.
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range or `fanout` is zero.
    pub fn unloaded_query_tail(&mut self, class: u8, fanout: u32, servers: &[u32]) -> SimDuration {
        assert!(fanout >= 1, "fanout must be at least 1");
        // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
        let spec = self.classes[class as usize];
        let ck = (class, self.group_key(fanout, servers));
        if let Some(&t) = self.tail_cache.get(&ck) {
            return t;
        }
        let ms = self.solve_tail(&ck.1, spec.percentile);
        let t = SimDuration::from_millis_f64(ms);
        self.tail_cache.insert(ck, t);
        t
    }

    fn solve_tail(&self, key: &GroupKey, p: f64) -> f64 {
        match &self.source {
            CdfSource::Analytic(reps) => {
                let pairs: Vec<(&dyn Cdf, u32)> = key
                    .as_pairs()
                    .iter()
                    // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
                    .map(|&(g, c)| (reps[g as usize].as_ref() as &dyn Cdf, c))
                    .collect();
                order_stats::grouped_quantile(&pairs, p)
            }
            CdfSource::Online(snaps) => {
                let pairs: Vec<(&dyn Cdf, u32)> = key
                    .as_pairs()
                    .iter()
                    // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
                    .map(|&(g, c)| (snaps[g as usize].as_ref() as &dyn Cdf, c))
                    .collect();
                order_stats::grouped_quantile(&pairs, p)
            }
        }
    }

    /// The task pre-dequeuing time budget `T_b = x_p^SLO − x_p^u(k_f)`
    /// (Eq. 6), clamped at zero when the unloaded tail already exceeds the
    /// SLO (such queries are maximally urgent).
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range or `fanout` is zero.
    pub fn budget(&mut self, class: u8, fanout: u32, servers: &[u32]) -> SimDuration {
        assert!(fanout >= 1, "fanout must be at least 1");
        self.budget_lookups += 1;
        // tg-lint: allow(panic-surface) -- group tables (`group_of`, `reps`, `hists`, `group_sizes`, `counts_scratch`) are rebuilt together by the grouping pass, so entries of one index the others by construction; inline keys are guarded by the `len < cap` branch; per-class specs are sized from the class list
        let spec = self.classes[class as usize];
        let ck = (class, self.group_key(fanout, servers));
        if let Some(&b) = self.budget_cache.get(&ck) {
            return b;
        }
        let tail = SimDuration::from_millis_f64(self.solve_tail(&ck.1, spec.percentile));
        let b = spec.slo.saturating_sub(tail);
        self.budget_cache.insert(ck, b);
        b
    }

    /// Number of distinct `(class, placement)` budgets currently cached.
    pub fn cached_budget_count(&self) -> usize {
        self.budget_cache.len()
    }

    /// Total [`DeadlineEstimator::budget`] calls over the estimator's
    /// lifetime (hits and misses alike). `budget_lookup_count() −
    /// cached_budget_count()` lower-bounds the cache hits since the last
    /// refresh — the steady-state "one hash lookup per deadline" property.
    pub fn budget_lookup_count(&self) -> u64 {
        self.budget_lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_dist::{Deterministic, Distribution, Exponential};
    use tailguard_simcore::SimTime;
    use tailguard_workload::TailbenchWorkload;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis_f64(v)
    }

    fn masstree_cluster(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(n, TailbenchWorkload::Masstree.service_dist())
    }

    #[test]
    fn paper_section_ivc_budgets() {
        // §IV.C: Masstree, fanout 100, class I SLO 1ms, class II 1.5ms:
        // budgets 1−0.473 = 0.527 ms and 1.5−0.473 = 1.027 ms.
        let cluster = masstree_cluster(100);
        let classes = vec![ClassSpec::p99(ms(1.0)), ClassSpec::p99(ms(1.5))];
        let mut est = DeadlineEstimator::new(&cluster, classes, EstimatorMode::Analytic);
        let b0 = est.budget(0, 100, &[]);
        let b1 = est.budget(1, 100, &[]);
        assert!((b0.as_millis_f64() - 0.527).abs() < 0.01, "b0={b0}");
        assert!((b1.as_millis_f64() - 1.027).abs() < 0.01, "b1={b1}");
    }

    #[test]
    fn budget_decreases_with_fanout() {
        let cluster = masstree_cluster(100);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(1.0))],
            EstimatorMode::Analytic,
        );
        let b1 = est.budget(0, 1, &[]);
        let b10 = est.budget(0, 10, &[]);
        let b100 = est.budget(0, 100, &[]);
        assert!(b1 > b10 && b10 > b100);
    }

    #[test]
    fn budget_clamps_at_zero() {
        // SLO below even the unloaded tail.
        let cluster = masstree_cluster(10);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(0.1))],
            EstimatorMode::Analytic,
        );
        assert_eq!(est.budget(0, 10, &[]), SimDuration::ZERO);
    }

    #[test]
    fn budgets_are_cached() {
        let cluster = masstree_cluster(100);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(1.0))],
            EstimatorMode::Analytic,
        );
        let _ = est.budget(0, 100, &[]);
        let _ = est.budget(0, 100, &[]);
        let _ = est.budget(0, 10, &[]);
        assert_eq!(est.cached_budget_count(), 2);
    }

    #[test]
    fn heterogeneous_placement_matters() {
        let fast: DynDistribution = Arc::new(Exponential::with_mean(0.1));
        let slow: DynDistribution = Arc::new(Exponential::with_mean(1.0));
        let cluster = ClusterSpec::heterogeneous(vec![
            Arc::clone(&fast),
            Arc::clone(&fast),
            Arc::clone(&slow),
            Arc::clone(&slow),
        ]);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(10.0))],
            EstimatorMode::Analytic,
        );
        let fast_budget = est.budget(0, 2, &[0, 1]);
        let slow_budget = est.budget(0, 2, &[2, 3]);
        assert!(
            fast_budget > slow_budget,
            "fast placement must leave more budget: {fast_budget} vs {slow_budget}"
        );
        // Mixed placement lies in between.
        let mixed = est.budget(0, 2, &[0, 2]);
        assert!(mixed < fast_budget && mixed >= slow_budget);
    }

    #[test]
    fn group_key_canonical_across_orderings() {
        let fast: DynDistribution = Arc::new(Exponential::with_mean(0.1));
        let slow: DynDistribution = Arc::new(Exponential::with_mean(1.0));
        let cluster =
            ClusterSpec::heterogeneous(vec![Arc::clone(&fast), Arc::clone(&slow), fast, slow]);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(10.0))],
            EstimatorMode::Analytic,
        );
        let a = est.budget(0, 2, &[0, 1]);
        let b = est.budget(0, 2, &[3, 2]); // same group multiset, other order
        assert_eq!(a, b);
        assert_eq!(est.cached_budget_count(), 1);
    }

    #[test]
    fn online_seeded_matches_analytic() {
        let cluster = masstree_cluster(100);
        let classes = vec![ClassSpec::p99(ms(1.0))];
        let mut analytic =
            DeadlineEstimator::new(&cluster, classes.clone(), EstimatorMode::Analytic);
        let mut online = DeadlineEstimator::new(
            &cluster,
            classes,
            EstimatorMode::Online {
                refresh_every: 10_000,
                offline_samples: 400_000,
            },
        );
        let mut rng = SimRng::seed(5);
        online.seed_offline(&cluster, 400_000, &mut rng);
        for k in [1u32, 10, 100] {
            let a = analytic.budget(0, k, &[]).as_millis_f64();
            let o = online.budget(0, k, &[]).as_millis_f64();
            assert!((a - o).abs() < 0.05, "k={k}: analytic {a} vs online {o}");
        }
    }

    #[test]
    fn online_tracks_server_slowdown() {
        // Failure injection: a server group slows down 5×; after online
        // updates the budget must tighten (x_p^u grows).
        let base: DynDistribution = Arc::new(Exponential::with_mean(0.2));
        let cluster = ClusterSpec::heterogeneous(vec![Arc::clone(&base), base]);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(20.0))],
            EstimatorMode::Online {
                refresh_every: 2_000,
                offline_samples: 50_000,
            },
        );
        let mut rng = SimRng::seed(6);
        est.seed_offline(&cluster, 50_000, &mut rng);
        let before = est.budget(0, 2, &[0, 1]);

        // Both servers now observed 5× slower.
        let slow = Exponential::with_mean(1.0);
        for _ in 0..200_000 {
            est.record_post_queuing(0, ms(slow.sample(&mut rng)));
            est.record_post_queuing(1, ms(slow.sample(&mut rng)));
        }
        let after = est.budget(0, 2, &[0, 1]);
        assert!(
            after < before,
            "budget must tighten after slowdown: {before} -> {after}"
        );
        assert!(est.refresh_count() > 10);
    }

    #[test]
    fn adaptive_window_reconverges_after_shift() {
        // A server group shifts from mean 0.2 ms to mean 1.0 ms. The
        // cumulative estimator averages both regimes; the adaptive one
        // forgets the old regime and re-converges to the new tail, so its
        // post-shift budget is strictly tighter.
        let make = |adaptive: Option<AdaptiveWindow>| {
            let base: DynDistribution = Arc::new(Exponential::with_mean(0.2));
            let cluster = ClusterSpec::heterogeneous(vec![Arc::clone(&base), base]);
            let mut est = DeadlineEstimator::new(
                &cluster,
                vec![ClassSpec::p99(ms(20.0))],
                EstimatorMode::Online {
                    refresh_every: 2_000,
                    offline_samples: 0,
                },
            );
            if let Some(aw) = adaptive {
                est = est.with_adaptive(aw);
            }
            let mut rng = SimRng::seed(6);
            est.seed_offline(&cluster, 100_000, &mut rng);
            // The shift: both servers now serve 5× slower.
            let slow = Exponential::with_mean(1.0);
            for _ in 0..50_000 {
                est.record_post_queuing(0, ms(slow.sample(&mut rng)));
                est.record_post_queuing(1, ms(slow.sample(&mut rng)));
            }
            est
        };
        let mut cumulative = make(None);
        let mut adaptive = make(Some(AdaptiveWindow::new(4_000, 0.3)));
        assert_eq!(cumulative.window_roll_count(), 0);
        assert!(adaptive.window_roll_count() >= 10);
        let c = adaptive.budget(0, 2, &[0, 1]);
        let s = cumulative.budget(0, 2, &[0, 1]);
        assert!(
            c < s,
            "adaptive budget must tighten past the stale average: adaptive {c} vs cumulative {s}"
        );
        // The adaptive tail is near the true post-shift tail; the
        // cumulative one is dragged low by 100k pre-shift samples.
        let true_tail = {
            let slow: DynDistribution = Arc::new(Exponential::with_mean(1.0));
            let cluster = ClusterSpec::heterogeneous(vec![Arc::clone(&slow), slow]);
            DeadlineEstimator::new(
                &cluster,
                vec![ClassSpec::p99(ms(20.0))],
                EstimatorMode::Analytic,
            )
            .unloaded_query_tail(0, 2, &[0, 1])
            .as_millis_f64()
        };
        let adaptive_tail = adaptive.unloaded_query_tail(0, 2, &[0, 1]).as_millis_f64();
        let cumulative_tail = cumulative
            .unloaded_query_tail(0, 2, &[0, 1])
            .as_millis_f64();
        assert!(
            (adaptive_tail - true_tail).abs() < (cumulative_tail - true_tail).abs(),
            "adaptive {adaptive_tail} must sit closer to true {true_tail} than cumulative {cumulative_tail}"
        );
    }

    #[test]
    fn window_roll_invalidates_caches() {
        let cluster = masstree_cluster(10);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(1.0))],
            EstimatorMode::Online {
                refresh_every: u64::MAX - 1,
                offline_samples: 0,
            },
        )
        .with_adaptive(AdaptiveWindow::new(100, 0.5));
        let mut rng = SimRng::seed(3);
        est.seed_offline(&cluster, 10_000, &mut rng);
        let _ = est.budget(0, 10, &[]);
        assert_eq!(est.cached_budget_count(), 1);
        for _ in 0..100 {
            est.record_post_queuing(0, ms(0.3));
        }
        assert_eq!(est.window_roll_count(), 1);
        assert_eq!(est.cached_budget_count(), 0, "roll must flush the memo");
    }

    #[test]
    fn adaptive_in_analytic_mode_never_rolls() {
        let cluster = masstree_cluster(10);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(1.0))],
            EstimatorMode::Analytic,
        )
        .with_adaptive(AdaptiveWindow::new(10, 0.5));
        for _ in 0..1_000 {
            est.record_post_queuing(0, ms(100.0));
        }
        assert_eq!(est.window_roll_count(), 0);
        assert_eq!(est.refresh_count(), 0);
    }

    #[test]
    #[should_panic(expected = "adaptive decay")]
    fn adaptive_decay_of_one_panics() {
        let _ = AdaptiveWindow::new(100, 1.0);
    }

    #[test]
    #[should_panic(expected = "adaptive window")]
    fn adaptive_zero_window_panics() {
        let _ = AdaptiveWindow::new(0, 0.5);
    }

    #[test]
    fn budget_lookup_counter_counts_hits_and_misses() {
        let cluster = masstree_cluster(100);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(1.0))],
            EstimatorMode::Analytic,
        );
        for _ in 0..100 {
            let _ = est.budget(0, 100, &[]);
        }
        assert_eq!(est.budget_lookup_count(), 100);
        assert_eq!(est.cached_budget_count(), 1);
    }

    #[test]
    fn group_key_spills_past_inline_capacity() {
        // More distinct groups than the inline key holds: the heap spill
        // path must stay canonical (same multiset, same cache entry).
        let dists: Vec<DynDistribution> = (1..=6)
            .map(|i| Arc::new(Exponential::with_mean(0.1 * i as f64)) as DynDistribution)
            .collect();
        let cluster = ClusterSpec::heterogeneous(dists);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(50.0))],
            EstimatorMode::Analytic,
        );
        let a = est.budget(0, 6, &[0, 1, 2, 3, 4, 5]);
        let b = est.budget(0, 6, &[5, 4, 3, 2, 1, 0]);
        assert_eq!(a, b);
        assert_eq!(est.cached_budget_count(), 1);
        assert!(a > SimDuration::ZERO);
        // A genuinely different multiset gets its own entry.
        let c = est.budget(0, 6, &[0, 0, 1, 2, 3, 4]);
        assert_ne!(a, c);
        assert_eq!(est.cached_budget_count(), 2);
    }

    #[test]
    fn deadline_is_t0_plus_budget() {
        // Smoke-test the Eq. 6 composition used by the query handler.
        let cluster = masstree_cluster(100);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(1.0))],
            EstimatorMode::Analytic,
        );
        let t0 = SimTime::from_millis(7);
        let deadline = t0 + est.budget(0, 100, &[]);
        assert!(deadline > t0);
        assert!(deadline < t0 + ms(1.0));
    }

    #[test]
    fn analytic_ignores_observations() {
        let cluster = masstree_cluster(10);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(1.0))],
            EstimatorMode::Analytic,
        );
        let before = est.budget(0, 10, &[]);
        for _ in 0..50_000 {
            est.record_post_queuing(0, ms(100.0));
        }
        // Cache not even invalidated: same value, zero refreshes.
        assert_eq!(est.budget(0, 10, &[]), before);
        assert_eq!(est.refresh_count(), 0);
    }

    #[test]
    fn unknown_placement_on_heterogeneous_spreads_proportionally() {
        let fast: DynDistribution = Arc::new(Deterministic::new(0.1));
        let slow: DynDistribution = Arc::new(Deterministic::new(1.0));
        let cluster = ClusterSpec::heterogeneous(vec![
            Arc::clone(&fast),
            Arc::clone(&fast),
            Arc::clone(&fast),
            slow,
        ]);
        let mut est = DeadlineEstimator::new(
            &cluster,
            vec![ClassSpec::p99(ms(5.0))],
            EstimatorMode::Analytic,
        );
        // fanout 4, unknown placement: 3 fast + 1 slow → tail = 1.0ms.
        let tail = est.unloaded_query_tail(0, 4, &[]);
        assert!((tail.as_millis_f64() - 1.0).abs() < 1e-6, "tail {tail}");
    }
}

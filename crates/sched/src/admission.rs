//! The admission controller (§III.C): a moving window over task-dequeue
//! outcomes plus reject-then-recover hysteresis.

use crate::config::AdmissionConfig;
use tailguard_metrics::{MovingRatio, TimedRatio};
use tailguard_simcore::SimTime;

/// The miss-ratio measurement device behind the controller: the paper's
/// moving *time* window by default, or a count window over the most recent
/// dequeues when [`AdmissionConfig::count_window`] is set.
///
/// Time-window events age out on their own, so the controller re-admits
/// under total rejection. The count window cannot age events out, so the
/// controller guards it with a max-freeze timeout ([`AdmissionConfig`]'s
/// `window` duration): once a windowful of time passes with no dequeue at
/// all, the frozen ratio is treated as stale, the window is cleared (which
/// re-arms the `min_samples` gate), and admission resumes.
#[derive(Debug, Clone)]
enum MissWindow {
    Timed(TimedRatio),
    Counted(MovingRatio),
}

impl MissWindow {
    fn record(&mut self, now: SimTime, missed: bool) {
        match self {
            MissWindow::Timed(w) => w.record(now, missed),
            MissWindow::Counted(w) => w.record(missed),
        }
    }

    fn len(&mut self, now: SimTime) -> usize {
        match self {
            MissWindow::Timed(w) => w.len(now),
            MissWindow::Counted(w) => w.len(),
        }
    }

    fn ratio(&mut self, now: SimTime) -> f64 {
        match self {
            MissWindow::Timed(w) => w.ratio(now),
            MissWindow::Counted(w) => w.ratio(),
        }
    }
}

/// Window-based admission control with hysteresis.
///
/// Rejection starts when the deadline-miss ratio over the window exceeds
/// `threshold` and stops when it falls below `resume_threshold` (or when the
/// window drains below `min_samples`, whichever happens first).
#[derive(Debug, Clone)]
pub(crate) struct AdmissionController {
    config: AdmissionConfig,
    window: MissWindow,
    rejecting: bool,
    resumes: u64,
    /// Last dequeue outcome fed into the window — the count window's
    /// staleness reference.
    last_event_at: SimTime,
}

impl AdmissionController {
    pub(crate) fn new(config: AdmissionConfig) -> Self {
        let window = match config.count_window {
            Some(n) => MissWindow::Counted(MovingRatio::new(n)),
            None => MissWindow::Timed(TimedRatio::new(config.window)),
        };
        AdmissionController {
            config,
            window,
            rejecting: false,
            resumes: 0,
            last_event_at: SimTime::ZERO,
        }
    }

    /// Records one dequeue outcome into the window.
    pub(crate) fn record(&mut self, now: SimTime, missed: bool) {
        self.last_event_at = now;
        self.window.record(now, missed);
    }

    /// Whether a query arriving at `now` must be rejected. Updates the
    /// `rejecting` state (hysteresis) as a side effect.
    pub(crate) fn rejects(&mut self, now: SimTime) -> bool {
        // Max-freeze guard for the count window: under total rejection no
        // new tasks are dequeued, so the count ratio would stay frozen above
        // the threshold forever. After a full `window` duration with no
        // dequeue the frozen measurement is stale — drop it and re-admit
        // (the cleared window re-arms the `min_samples` gate).
        if let MissWindow::Counted(w) = &mut self.window {
            if now.saturating_since(self.last_event_at) > self.config.window {
                w.clear();
                self.resume_if_rejecting();
                return false;
            }
        }
        if self.window.len(now) < self.config.min_samples {
            self.resume_if_rejecting();
            return false;
        }
        let ratio = self.window.ratio(now);
        if self.rejecting {
            if ratio < self.config.resume_threshold {
                self.resume_if_rejecting();
            }
        } else if ratio > self.config.threshold {
            self.rejecting = true;
        }
        self.rejecting
    }

    fn resume_if_rejecting(&mut self) {
        if self.rejecting {
            self.rejecting = false;
            self.resumes += 1;
        }
    }

    /// Number of reject→admit transitions so far (each one means rejection
    /// *stopped* after the window recovered or drained).
    pub(crate) fn resumes(&self) -> u64 {
        self.resumes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailguard_simcore::SimDuration;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn cfg(threshold: f64) -> AdmissionConfig {
        AdmissionConfig::new(SimDuration::from_millis(100), threshold).with_min_samples(4)
    }

    #[test]
    fn below_min_samples_never_rejects() {
        let mut c = AdmissionController::new(cfg(0.1));
        c.record(ms(0), true);
        c.record(ms(1), true);
        assert!(!c.rejects(ms(1)));
    }

    #[test]
    fn rejects_above_threshold_and_resumes_below() {
        let mut c = AdmissionController::new(cfg(0.5));
        for i in 0..4 {
            c.record(ms(i), true);
        }
        assert!(c.rejects(ms(4)), "all misses → reject");
        // On-time dequeues dilute the ratio below the (resume) threshold.
        for i in 5..15 {
            c.record(ms(i), false);
        }
        assert!(!c.rejects(ms(15)));
        assert_eq!(c.resumes(), 1);
    }

    #[test]
    fn hysteresis_holds_between_resume_and_reject_thresholds() {
        // threshold 0.5, resume 0.2: a ratio of 1/3 keeps rejecting once
        // started, but does not start rejection on its own.
        let config = cfg(0.5).with_resume_threshold(0.2);
        let mut fresh = AdmissionController::new(config);
        for i in 0..2 {
            fresh.record(ms(i), true);
        }
        for i in 2..6 {
            fresh.record(ms(i), false);
        }
        assert!(!fresh.rejects(ms(6)), "1/3 < threshold: stays admitting");

        let mut tripped = AdmissionController::new(config);
        for i in 0..4 {
            tripped.record(ms(i), true);
        }
        assert!(tripped.rejects(ms(4)));
        for i in 5..13 {
            tripped.record(ms(i), false);
        }
        // Ratio now 4/12 = 1/3: above resume threshold, keeps rejecting.
        assert!(tripped.rejects(ms(13)), "1/3 > resume: still rejecting");
        for i in 13..30 {
            tripped.record(ms(i), false);
        }
        assert!(!tripped.rejects(ms(30)), "ratio below resume: admits again");
        assert_eq!(tripped.resumes(), 1);
    }

    #[test]
    fn timed_window_drains_and_resumes() {
        // Total rejection: no new dequeues; the time window must age the
        // misses out and resume on its own.
        let mut c = AdmissionController::new(cfg(0.1));
        for i in 0..10 {
            c.record(ms(i), true);
        }
        assert!(c.rejects(ms(10)));
        assert!(!c.rejects(ms(500)), "window drained → admit");
        assert_eq!(c.resumes(), 1);
    }

    #[test]
    fn count_window_recovers_after_max_freeze() {
        // Regression for the count-window freeze hazard: under total
        // rejection no new tasks are dequeued, the ratio never changes, and
        // the controller used to reject forever. A windowful of silence now
        // marks the measurement stale and re-admits.
        let config = cfg(0.1).with_count_window(8);
        let mut c = AdmissionController::new(config);
        for i in 0..8 {
            c.record(ms(i), true);
        }
        assert!(c.rejects(ms(8)));
        assert!(
            c.rejects(ms(50)),
            "within the freeze window the miss burst still rejects"
        );
        assert!(
            !c.rejects(ms(500_000)),
            "a stale count window must not reject forever"
        );
        assert_eq!(c.resumes(), 1);
        // The cleared window re-arms the min-samples gate.
        assert!(!c.rejects(ms(500_001)));
        c.record(ms(500_002), true);
        assert!(!c.rejects(ms(500_003)), "one miss is below min_samples");
    }

    #[test]
    fn count_window_rejects_on_recent_miss_burst() {
        let config = cfg(0.25).with_count_window(4);
        let mut c = AdmissionController::new(config);
        // Old clean history beyond the window capacity...
        for i in 0..100 {
            c.record(ms(i), false);
        }
        assert!(!c.rejects(ms(100)));
        // ...then a burst of misses fills the 4-slot window.
        for i in 100..104 {
            c.record(ms(i), true);
        }
        assert!(c.rejects(ms(104)));
    }
}

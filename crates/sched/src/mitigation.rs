//! Straggler/fault mitigation knobs and counters.
//!
//! The mitigation layer lives in the shared [`crate::QueryHandler`] so both
//! runtimes get identical semantics: deadline-aware hedging (reissue a task
//! to a backup server when its remaining budget crosses a threshold, first
//! completion wins), fault-driven retries (a task lost to a blackout is
//! reissued elsewhere), and graceful degradation (a query may complete
//! "partial" once a quorum of `m ≤ k_f` tasks has finished, accounted
//! separately so SLO reporting stays honest).

/// Mitigation configuration, all knobs expressed as *fractions* of
/// per-query quantities so the same config works in the simulator's
/// virtual-time domain and the testbed's compressed wall-clock domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationConfig {
    /// Hedge threshold as a fraction of the task's queuing budget `T_b`:
    /// when a task has not completed by `t_0 + hedge_after × T_b`, a hedge
    /// copy is issued to a backup server. `None` disables hedging.
    pub hedge_after: Option<f64>,
    /// Maximum attempts per logical task, counting the original (so 2 =
    /// original + at most one hedge/retry). Must be ≥ 1.
    pub max_attempts: u32,
    /// Whether tasks lost to faults (blackouts, worker failures) are
    /// retried on a backup server while attempts remain.
    pub retry_lost: bool,
    /// Graceful degradation: the query completes "partial" once
    /// `ceil(partial_quorum × k_f)` of its tasks have finished (clamped to
    /// `1..=k_f`). `None` requires all `k_f` tasks.
    pub partial_quorum: Option<f64>,
    /// Retry-storm guard: a per-class token bucket capping *outstanding*
    /// hedge+retry copies. A hedge or retry is denied (counted in
    /// [`RobustnessStats::budget_exhausted`]) while the class already has
    /// this many duplicates in flight, so mitigation cannot amplify load
    /// into an already-degraded cluster. `None` leaves it uncapped.
    pub hedge_budget: Option<u32>,
}

impl Default for MitigationConfig {
    fn default() -> Self {
        MitigationConfig {
            hedge_after: None,
            max_attempts: 2,
            retry_lost: true,
            partial_quorum: None,
            hedge_budget: None,
        }
    }
}

impl MitigationConfig {
    /// The default config: no hedging, no quorum, lost tasks retried once.
    pub fn new() -> Self {
        MitigationConfig::default()
    }

    /// Sets the hedge threshold as a fraction of the queuing budget.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is finite and positive.
    pub fn with_hedge_after(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction > 0.0,
            "hedge_after must be finite and positive, got {fraction}"
        );
        self.hedge_after = Some(fraction);
        self
    }

    /// Sets the per-task attempt cap (original + hedges/retries).
    ///
    /// # Panics
    ///
    /// Panics when `attempts` is zero.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        assert!(attempts >= 1, "max_attempts must be at least 1");
        self.max_attempts = attempts;
        self
    }

    /// Enables or disables retrying fault-lost tasks.
    pub fn with_retry_lost(mut self, retry: bool) -> Self {
        self.retry_lost = retry;
        self
    }

    /// Sets the partial-completion quorum fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `(0, 1]`.
    pub fn with_partial_quorum(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "partial_quorum must be in (0, 1], got {fraction}"
        );
        self.partial_quorum = Some(fraction);
        self
    }

    /// Caps outstanding hedge+retry copies per class (the retry-storm
    /// guard's token bucket size).
    ///
    /// # Panics
    ///
    /// Panics when `budget` is zero (use `retry_lost: false` and no
    /// `hedge_after` to disable mitigation outright).
    pub fn with_hedge_budget(mut self, budget: u32) -> Self {
        assert!(budget >= 1, "hedge_budget must be at least 1");
        self.hedge_budget = Some(budget);
        self
    }
}

/// Fault/hedge/partial counters, accumulated by the handler.
///
/// Conservation invariant (checked by the property tests): once all issued
/// work has drained, `task_wins + cancelled_tasks + tasks_lost_to_faults`
/// equals the number of task attempts created, and every admitted query is
/// exactly one of fully completed, partial, or failed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RobustnessStats {
    /// Hedge copies issued (budget threshold crossed).
    pub hedges_issued: u64,
    /// Hedge copies that won their slot (beat the original).
    pub hedge_wins: u64,
    /// Retry copies issued for tasks lost to faults.
    pub retries: u64,
    /// Task attempts that resolved their slot (first completion per slot).
    pub task_wins: u64,
    /// Task attempts discarded because their slot was already resolved
    /// (hedge losers, and stragglers of early-quorum queries).
    pub cancelled_tasks: u64,
    /// Task attempts lost to injected faults or worker failures.
    pub tasks_lost_to_faults: u64,
    /// Queries that completed at quorum with fewer than `k_f` task results.
    pub partial_completions: u64,
    /// Queries whose every task was lost (no result at all).
    pub failed_queries: u64,
    /// Hedges/retries denied by the [`MitigationConfig::hedge_budget`]
    /// token bucket (outstanding-duplicate cap hit for the class).
    pub budget_exhausted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let m = MitigationConfig::new()
            .with_hedge_after(0.5)
            .with_max_attempts(3)
            .with_retry_lost(false)
            .with_partial_quorum(0.8)
            .with_hedge_budget(4);
        assert_eq!(m.hedge_after, Some(0.5));
        assert_eq!(m.max_attempts, 3);
        assert!(!m.retry_lost);
        assert_eq!(m.partial_quorum, Some(0.8));
        assert_eq!(m.hedge_budget, Some(4));
    }

    #[test]
    #[should_panic(expected = "hedge_after")]
    fn zero_hedge_fraction_panics() {
        let _ = MitigationConfig::new().with_hedge_after(0.0);
    }

    #[test]
    #[should_panic(expected = "max_attempts")]
    fn zero_attempts_panics() {
        let _ = MitigationConfig::new().with_max_attempts(0);
    }

    #[test]
    #[should_panic(expected = "partial_quorum")]
    fn oversized_quorum_panics() {
        let _ = MitigationConfig::new().with_partial_quorum(1.5);
    }

    #[test]
    #[should_panic(expected = "hedge_budget")]
    fn zero_hedge_budget_panics() {
        let _ = MitigationConfig::new().with_hedge_budget(0);
    }
}

//! Per-server health scoring and hysteresis-gated outlier ejection.
//!
//! TailGuard's deadline math assumes every server's latency CDF is the one
//! the estimator measured. A *gray-failing* server — degrading slowly,
//! flapping between slow and healthy — breaks that silently: its tasks
//! dequeue with apparently healthy slack and then overshoot, dragging the
//! query tail past the SLO long before episode-based fault predicates
//! would notice. This module watches the same completion stream the online
//! estimator consumes and maintains a per-server *health score*: an EWMA
//! of observed post-queuing times (the completion-slack signal — a server
//! whose completions eat the stamped slack scores worse). Scores are
//! compared cross-sectionally against the cluster median, so a global
//! shift (flash crowd, diurnal swell) moves the baseline instead of
//! ejecting everyone.
//!
//! Ejection is hysteresis-gated like admission control: a server is
//! ejected when its score exceeds `eject_multiplier ×` the median and only
//! readmitted once it falls below the (lower) `readmit_multiplier ×`
//! median, so a flapping server cannot oscillate the dispatcher. Two
//! safety rails bound the mechanism:
//!
//! * **recovery probing** — every `probe_every`-th task aimed at an
//!   ejected server is sent there anyway, so fresh observations exist to
//!   readmit it (ejection without probing is permanent exile);
//! * **a quorum floor** — ejection never drops the healthy-server count
//!   below `ceil(min_healthy_fraction × N)`, so partial-quorum queries
//!   remain satisfiable no matter how pathological the plan.
//!
//! Like every knob in the scheduling core the tracker is pure data — no
//! clock, no RNG — and `Option`-gated in the handler so runs without it
//! stay bit-identical.

use tailguard_simcore::SimDuration;

/// Health-scoring and ejection configuration.
///
/// All thresholds are *dimensionless multiples of the cluster-median
/// score*, so the same config works in the simulator's virtual-time domain
/// and the testbed's compressed wall-clock domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// EWMA smoothing factor for per-server scores (`0 < alpha <= 1`;
    /// higher = faster reaction, noisier score).
    pub alpha: f64,
    /// Eject a server when its score exceeds this multiple of the cluster
    /// median (must be `> readmit_multiplier`).
    pub eject_multiplier: f64,
    /// Readmit an ejected server when its score falls back below this
    /// multiple of the cluster median (must be `>= 1`).
    pub readmit_multiplier: f64,
    /// Observations required per server before it can be ejected (and
    /// before it participates in the median).
    pub min_observations: u64,
    /// Every `probe_every`-th task aimed at an ejected server is dispatched
    /// to it anyway as a recovery probe (must be `>= 2`).
    pub probe_every: u32,
    /// Hard floor: ejection never drops the healthy-server count below
    /// `ceil(min_healthy_fraction × servers)` (must lie in `(0, 1]`).
    pub min_healthy_fraction: f64,
    /// Re-evaluate ejection state every this many observations (the
    /// cross-sectional median sort is O(N log N), so it is amortized).
    pub eval_every: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            alpha: 0.05,
            eject_multiplier: 3.0,
            readmit_multiplier: 1.5,
            min_observations: 50,
            probe_every: 10,
            min_healthy_fraction: 0.6,
            eval_every: 64,
        }
    }
}

impl HealthConfig {
    /// The default config: `alpha` 0.05, eject at 3× median, readmit below
    /// 1.5× median, 50 observations minimum, probe every 10th diverted
    /// task, at least 60 % of servers kept healthy, evaluation every 64
    /// observations.
    pub fn new() -> Self {
        HealthConfig::default()
    }

    /// Sets the EWMA smoothing factor.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` lies in `(0, 1]`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "health alpha must lie in (0, 1], got {alpha}"
        );
        self.alpha = alpha;
        self
    }

    /// Sets the ejection and readmission thresholds (hysteresis pair).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= readmit < eject` and both are finite.
    pub fn with_thresholds(mut self, eject: f64, readmit: f64) -> Self {
        assert!(
            eject.is_finite() && readmit.is_finite() && readmit >= 1.0 && eject > readmit,
            "health thresholds need 1 <= readmit < eject, got eject {eject}, readmit {readmit}"
        );
        self.eject_multiplier = eject;
        self.readmit_multiplier = readmit;
        self
    }

    /// Sets the per-server observation minimum.
    ///
    /// # Panics
    ///
    /// Panics when `min` is zero.
    pub fn with_min_observations(mut self, min: u64) -> Self {
        assert!(min >= 1, "min_observations must be at least 1");
        self.min_observations = min;
        self
    }

    /// Sets the recovery-probe cadence.
    ///
    /// # Panics
    ///
    /// Panics unless `every >= 2` (1 would disable ejection entirely).
    pub fn with_probe_every(mut self, every: u32) -> Self {
        assert!(every >= 2, "probe_every must be at least 2, got {every}");
        self.probe_every = every;
        self
    }

    /// Sets the quorum floor fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` lies in `(0, 1]`.
    pub fn with_min_healthy_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "min_healthy_fraction must lie in (0, 1], got {fraction}"
        );
        self.min_healthy_fraction = fraction;
        self
    }

    /// Sets the evaluation cadence.
    ///
    /// # Panics
    ///
    /// Panics when `every` is zero.
    pub fn with_eval_every(mut self, every: u64) -> Self {
        assert!(every >= 1, "eval_every must be at least 1");
        self.eval_every = every;
        self
    }
}

/// Health/ejection counters, accumulated by the tracker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// Servers ejected (each hysteresis flip to ejected counts once).
    pub ejections: u64,
    /// Ejected servers readmitted after recovery probing.
    pub readmissions: u64,
    /// Tasks sent to an ejected server as recovery probes.
    pub probes: u64,
    /// Tasks diverted away from an ejected server.
    pub rerouted_tasks: u64,
    /// Ejections denied because they would breach the quorum floor.
    pub floor_denials: u64,
}

/// Per-server health scores with hysteresis-gated outlier ejection.
///
/// # Example
///
/// ```
/// use tailguard_sched::{HealthConfig, HealthTracker};
/// use tailguard_simcore::SimDuration;
///
/// let mut t = HealthTracker::new(HealthConfig::new().with_min_observations(5), 4);
/// for _ in 0..100 {
///     for s in 0..4u32 {
///         // Server 3 is 10× slower than its peers.
///         let ms = if s == 3 { 2.0 } else { 0.2 };
///         t.observe(s as usize, SimDuration::from_millis_f64(ms));
///     }
/// }
/// assert!(t.is_ejected(3));
/// assert!(!t.is_ejected(0));
/// ```
#[derive(Debug)]
pub struct HealthTracker {
    config: HealthConfig,
    /// Per-server EWMA of observed post-queuing times, in ms.
    ewma: Vec<f64>,
    /// Per-server observation counts.
    count: Vec<u64>,
    ejected: Vec<bool>,
    /// Per-server divert counter driving the probe cadence.
    probe_counter: Vec<u32>,
    since_eval: u64,
    /// `(score, server)` scratch for the median sort.
    scratch: Vec<(f64, u32)>,
    min_healthy: usize,
    healthy: usize,
    stats: HealthStats,
    /// Ejection-state flips since the last [`HealthTracker::take_transition`]
    /// drain, in evaluation order: `(server, ejected)`. The handler drains
    /// this after every observation to narrate flips into the trace stream;
    /// flips are rare (hysteresis), so the buffer is almost always empty.
    transitions: Vec<(u32, bool)>,
}

impl HealthTracker {
    /// Creates a tracker for `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics when `servers` is zero.
    pub fn new(config: HealthConfig, servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        // ceil(fraction × N), clamped into 1..=N.
        let min_healthy =
            // tg-lint: allow(lossy-cast) -- server counts are far below 2^32; the min-healthy floor is clamped to 1..=servers right after
            ((config.min_healthy_fraction * servers as f64).ceil() as usize).clamp(1, servers);
        HealthTracker {
            config,
            ewma: vec![0.0; servers],
            count: vec![0; servers],
            ejected: vec![false; servers],
            probe_counter: vec![0; servers],
            since_eval: 0,
            scratch: Vec::with_capacity(servers),
            min_healthy,
            healthy: servers,
            stats: HealthStats::default(),
            transitions: Vec::new(),
        }
    }

    /// Feeds one observed post-queuing time for `server` into its score
    /// and, every `eval_every` observations, re-evaluates ejection state.
    ///
    /// # Panics
    ///
    /// Panics when `server` is out of range.
    /// `t` is a virtual-time duration (nanosecond domain).
    pub fn observe(&mut self, server: usize, t: SimDuration) {
        let ms = t.as_millis_f64();
        // tg-lint: allow(panic-surface) -- per-server tables are sized at construction and `server` ids are validated by the handler; `scratch` is refilled from the non-empty server set before the median read
        let n = &mut self.count[server];
        if *n == 0 {
            // tg-lint: allow(panic-surface) -- per-server tables are sized at construction and `server` ids are validated by the handler; `scratch` is refilled from the non-empty server set before the median read
            self.ewma[server] = ms;
        } else {
            let a = self.config.alpha;
            // tg-lint: allow(panic-surface) -- per-server tables are sized at construction and `server` ids are validated by the handler; `scratch` is refilled from the non-empty server set before the median read
            self.ewma[server] = a * ms + (1.0 - a) * self.ewma[server];
        }
        *n += 1;
        self.since_eval += 1;
        if self.since_eval >= self.config.eval_every {
            self.since_eval = 0;
            self.evaluate();
        }
    }

    /// Re-evaluates ejection state against the current cluster median.
    fn evaluate(&mut self) {
        let min_obs = self.config.min_observations;
        self.scratch.clear();
        for (s, (&score, &n)) in self.ewma.iter().zip(&self.count).enumerate() {
            if n >= min_obs {
                // tg-lint: allow(lossy-cast) -- server counts are far below 2^32; the min-healthy floor is clamped to 1..=servers right after
                self.scratch.push((score, s as u32));
            }
        }
        if self.scratch.is_empty() {
            return;
        }
        // Deterministic median: total order on (score, index) — sched is
        // float-strict, so no NaN can reach here (durations are finite).
        self.scratch
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Lower-middle median: with an even count this keeps the baseline
        // on the healthy side when up to half the cluster degrades.
        // tg-lint: allow(panic-surface) -- per-server tables are sized at construction and `server` ids are validated by the handler; `scratch` is refilled from the non-empty server set before the median read
        let median = self.scratch[(self.scratch.len() - 1) / 2].0;
        if median <= 0.0 {
            return;
        }
        let eject_above = median * self.config.eject_multiplier;
        let readmit_below = median * self.config.readmit_multiplier;
        // Readmissions first, so recovered servers free floor room for
        // genuinely degraded ones in the same evaluation.
        for &(score, s) in self.scratch.iter() {
            let s = s as usize;
            if self.ejected[s] && score < readmit_below {
                self.ejected[s] = false;
                self.probe_counter[s] = 0;
                self.healthy += 1;
                self.stats.readmissions += 1;
                // tg-lint: allow(lossy-cast) -- server counts are far below 2^32; the min-healthy floor is clamped to 1..=servers right after
                self.transitions.push((s as u32, false));
            }
        }
        // Eject worst-first (the scratch is sorted ascending) so the floor
        // budget goes to the clearest outliers.
        for i in (0..self.scratch.len()).rev() {
            let (score, s) = self.scratch[i];
            let s = s as usize;
            if self.ejected[s] || score <= eject_above {
                continue;
            }
            if self.healthy <= self.min_healthy {
                self.stats.floor_denials += 1;
                continue;
            }
            self.ejected[s] = true;
            self.healthy = self.healthy.saturating_sub(1);
            self.stats.ejections += 1;
            // tg-lint: allow(lossy-cast) -- server counts are far below 2^32; the min-healthy floor is clamped to 1..=servers right after
            self.transitions.push((s as u32, true));
        }
    }

    /// Pops the oldest undrained ejection-state flip, if any: `(server,
    /// ejected)` where `ejected` is `true` for an ejection and `false` for
    /// a readmission. The handler drains this after feeding observations so
    /// flips reach the trace stream at the observation that caused them;
    /// an undrained buffer costs nothing (flips are hysteresis-rare).
    pub fn take_transition(&mut self) -> Option<(u32, bool)> {
        if self.transitions.is_empty() {
            None
        } else {
            Some(self.transitions.remove(0))
        }
    }

    /// Whether `server` is currently ejected.
    pub fn is_ejected(&self, server: usize) -> bool {
        // tg-lint: allow(panic-surface) -- per-server tables are sized at construction and `server` ids are validated by the handler; `scratch` is refilled from the non-empty server set before the median read
        self.ejected[server]
    }

    /// Dispatch-time gate for a task aimed at `server`: `true` means the
    /// task should be diverted to a healthy server, `false` means it goes
    /// to its target (either the server is healthy, or this task is the
    /// periodic recovery probe). Counts probes and reroutes.
    pub fn should_divert(&mut self, server: usize) -> bool {
        // tg-lint: allow(panic-surface) -- per-server tables are sized at construction and `server` ids are validated by the handler; `scratch` is refilled from the non-empty server set before the median read
        if !self.ejected[server] {
            return false;
        }
        // tg-lint: allow(panic-surface) -- per-server tables are sized at construction and `server` ids are validated by the handler; `scratch` is refilled from the non-empty server set before the median read
        let c = &mut self.probe_counter[server];
        *c += 1;
        if *c >= self.config.probe_every {
            *c = 0;
            self.stats.probes += 1;
            false
        } else {
            self.stats.rerouted_tasks += 1;
            true
        }
    }

    /// Number of currently healthy (non-ejected) servers.
    pub fn healthy_count(&self) -> usize {
        self.healthy
    }

    /// The quorum floor: ejection never takes the healthy count below this.
    pub fn min_healthy(&self) -> usize {
        self.min_healthy
    }

    /// The per-server health scores (EWMA of observed post-queuing times,
    /// ms; 0 before the first observation).
    pub fn scores(&self) -> &[f64] {
        &self.ewma
    }

    /// The accumulated counters.
    pub fn stats(&self) -> &HealthStats {
        &self.stats
    }

    /// The configuration the tracker was built with.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis_f64(v)
    }

    fn quick_config() -> HealthConfig {
        HealthConfig::new()
            .with_min_observations(5)
            .with_eval_every(8)
    }

    /// Feeds `rounds` observations to every server; `slow` servers observe
    /// `slow_ms`, the rest `base_ms`.
    fn feed(t: &mut HealthTracker, servers: usize, slow: &[usize], rounds: usize) {
        for _ in 0..rounds {
            for s in 0..servers {
                let v = if slow.contains(&s) { 2.0 } else { 0.2 };
                t.observe(s, ms(v));
            }
        }
    }

    #[test]
    fn outlier_is_ejected_and_peers_stay() {
        let mut t = HealthTracker::new(quick_config(), 8);
        feed(&mut t, 8, &[5], 50);
        assert!(t.is_ejected(5));
        for s in [0, 1, 2, 3, 4, 6, 7] {
            assert!(!t.is_ejected(s), "server {s} wrongly ejected");
        }
        assert_eq!(t.healthy_count(), 7);
        assert_eq!(t.stats().ejections, 1);
    }

    #[test]
    fn global_shift_moves_baseline_instead_of_ejecting() {
        // Every server slows down together (flash crowd): the median moves
        // with them, so nobody is an outlier.
        let mut t = HealthTracker::new(quick_config(), 8);
        feed(&mut t, 8, &[], 30);
        for _ in 0..50 {
            for s in 0..8 {
                t.observe(s, ms(3.0));
            }
        }
        assert_eq!(t.healthy_count(), 8);
        assert_eq!(t.stats().ejections, 0);
    }

    #[test]
    fn hysteresis_requires_recovery_below_readmit_threshold() {
        let mut t = HealthTracker::new(quick_config(), 8);
        feed(&mut t, 8, &[3], 50);
        assert!(t.is_ejected(3));
        // Recovery: server 3 now observes healthy times (via probes); the
        // score decays below readmit_multiplier × median and it returns.
        feed(&mut t, 8, &[], 200);
        assert!(!t.is_ejected(3), "score {}", t.scores()[3]);
        assert_eq!(t.stats().readmissions, 1);
        assert_eq!(t.healthy_count(), 8);
    }

    #[test]
    fn probe_cadence_lets_every_nth_task_through() {
        let mut t = HealthTracker::new(quick_config().with_probe_every(4), 8);
        feed(&mut t, 8, &[2], 50);
        assert!(t.is_ejected(2));
        let verdicts: Vec<bool> = (0..8).map(|_| t.should_divert(2)).collect();
        assert_eq!(
            verdicts,
            [true, true, true, false, true, true, true, false],
            "every 4th aimed task probes"
        );
        assert_eq!(t.stats().probes, 2);
        assert_eq!(t.stats().rerouted_tasks, 6);
        // Healthy servers are never diverted.
        assert!(!t.should_divert(0));
        assert_eq!(t.stats().rerouted_tasks, 6);
    }

    #[test]
    fn quorum_floor_caps_ejections() {
        // 5 servers, floor 80% → min_healthy = ceil(4.0) = 4: at most one
        // ejection even though two servers degrade.
        let mut t = HealthTracker::new(quick_config().with_min_healthy_fraction(0.8), 5);
        feed(&mut t, 5, &[3, 4], 60);
        assert_eq!(t.min_healthy(), 4);
        assert_eq!(t.healthy_count(), 4);
        assert_eq!(
            t.ejected.iter().filter(|&&e| e).count(),
            1,
            "exactly the floor budget is spent"
        );
        assert!(t.stats().floor_denials > 0);
    }

    #[test]
    fn worst_server_gets_the_floor_budget() {
        // Two degraded servers but floor room for one: the slower one goes.
        let mut t = HealthTracker::new(quick_config().with_min_healthy_fraction(0.75), 4);
        for _ in 0..60 {
            t.observe(0, ms(0.2));
            t.observe(1, ms(0.2));
            t.observe(2, ms(2.0));
            t.observe(3, ms(5.0));
        }
        assert_eq!(t.min_healthy(), 3);
        assert!(t.is_ejected(3), "worst outlier ejected");
        assert!(!t.is_ejected(2), "floor keeps the milder one");
    }

    #[test]
    fn too_few_observations_never_eject() {
        let mut t = HealthTracker::new(quick_config().with_min_observations(1_000), 4);
        feed(&mut t, 4, &[0], 50);
        assert_eq!(t.healthy_count(), 4);
        assert_eq!(t.stats().ejections, 0);
    }

    #[test]
    fn scores_track_observations() {
        let mut t = HealthTracker::new(quick_config().with_alpha(0.5), 2);
        t.observe(0, ms(1.0));
        assert_eq!(t.scores()[0], 1.0, "first observation seeds the EWMA");
        t.observe(0, ms(3.0));
        assert!((t.scores()[0] - 2.0).abs() < 1e-12);
        assert_eq!(t.scores()[1], 0.0, "unobserved server scores 0");
    }

    #[test]
    fn config_builders_validate() {
        let c = HealthConfig::new()
            .with_alpha(0.2)
            .with_thresholds(4.0, 2.0)
            .with_min_observations(10)
            .with_probe_every(5)
            .with_min_healthy_fraction(0.5)
            .with_eval_every(32);
        assert_eq!(c.alpha, 0.2);
        assert_eq!(c.eject_multiplier, 4.0);
        assert_eq!(c.readmit_multiplier, 2.0);
        assert_eq!(c.min_observations, 10);
        assert_eq!(c.probe_every, 5);
        assert_eq!(c.min_healthy_fraction, 0.5);
        assert_eq!(c.eval_every, 32);
    }

    #[test]
    #[should_panic(expected = "readmit < eject")]
    fn inverted_thresholds_panic() {
        let _ = HealthConfig::new().with_thresholds(2.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "probe_every")]
    fn probe_every_one_panics() {
        let _ = HealthConfig::new().with_probe_every(1);
    }

    #[test]
    #[should_panic(expected = "min_healthy_fraction")]
    fn zero_floor_panics() {
        let _ = HealthConfig::new().with_min_healthy_fraction(0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn oversized_alpha_panics() {
        let _ = HealthConfig::new().with_alpha(1.5);
    }
}

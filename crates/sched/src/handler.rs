//! The runtime-agnostic query-handler state machine.
//!
//! [`QueryHandler`] owns everything the TailGuard query handler of Fig. 2
//! does between "a query arrives" and "its slowest task returns": deadline
//! stamping (`t_D = t_0 + T_b`, Eq. 6) via the [`DeadlineEstimator`],
//! per-server [`TaskQueue`]s under the configured [`Policy`], window-based
//! admission with hysteresis (§III.C), dequeue-time deadline-miss detection
//! feeding the admission window, fanout aggregation (slowest-task-wins),
//! and per-class latency/load accounting.
//!
//! It is a pure event-driven core: every method takes `now` as an argument
//! and the handler holds no clock, RNG, or I/O. The discrete-event
//! simulator drives it from its event heap; the tokio testbed drives it
//! from channel events under a real or paused clock. Drivers own what is
//! genuinely theirs — the sim draws placements/service times and schedules
//! `Finish` events; the testbed sends task assignments to edge-node tasks
//! and measures real post-queuing times.

use crate::admission::AdmissionController;
use crate::config::{AdmissionConfig, ClassSpec};
use crate::estimator::DeadlineEstimator;
use crate::health::{HealthConfig, HealthStats, HealthTracker};
use crate::mitigation::{MitigationConfig, RobustnessStats};
use crate::trace::{NullSink, TraceEvent, TraceSink};
use crate::units;
use std::collections::BTreeMap;
use tailguard_lifecycle::{AttemptKind, CommitOutcome, LeaseToken, LifecycleStats, TaskStateStore};
use tailguard_metrics::{LatencyReservoir, LoadStats};
use tailguard_policy::{DeadlineRule, Policy, QueuedTask, ServiceClass, TaskQueue};
use tailguard_simcore::{SimDuration, SimTime};

/// Handler-local query identifier, assigned sequentially from 0.
pub type QueryId = u32;

/// Handler-local task identifier, assigned sequentially from 0 across all
/// queries (fanout tasks of one query get consecutive ids in target order).
pub type TaskId = u32;

/// A query *type*: the paper measures tail latency separately per
/// `(class, fanout)` pair, because meeting the SLO "for queries as a whole
/// does not guarantee that queries of individual types can meet" it
/// (§IV.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryTypeKey {
    /// Service class index.
    pub class: u8,
    /// Query fanout.
    pub fanout: u32,
}

/// One query arrival, as the driver presents it to the handler.
///
/// Placement (and, for the simulator, pre-drawn service times) stay with
/// the driver: the handler never touches an RNG.
#[derive(Debug, Clone, Copy)]
pub struct QueryArrival<'a> {
    /// Service class index.
    pub class: u8,
    /// Target servers, one per task (`len()` = fanout `k_f`).
    pub targets: &'a [u32],
    /// Optional per-task size hints aligned with `targets` — the simulator
    /// passes its pre-drawn service times so size-aware policies (SJF) can
    /// order on them; the testbed has no oracle and passes `None`.
    pub sizes: Option<&'a [SimDuration]>,
    /// Overrides the estimator-derived pre-dequeuing budget `T_b` (request
    /// decomposition, Eq. 7).
    pub budget_override: Option<SimDuration>,
    /// Per-task budget overrides aligned with `targets` (footnote-4
    /// ablation). Takes precedence over `budget_override`.
    pub task_budgets: Option<&'a [SimDuration]>,
    /// Whether this query's latencies count toward the report (false during
    /// the simulator's warm-up prefix).
    pub record: bool,
}

/// The admission verdict for one query arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// The query was admitted and its tasks enqueued; tasks that landed on
    /// idle servers were started immediately (reported via the `started`
    /// out-parameter of [`QueryHandler::on_query_arrival`]).
    Admitted {
        /// The id assigned to the admitted query.
        query: QueryId,
    },
    /// The query was rejected by admission control; no state was created.
    Rejected,
}

/// A task entering service on a server — the driver's cue to begin the
/// actual work (schedule a `Finish` event; send the node an assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchedTask {
    /// The task now in service.
    pub task: TaskId,
    /// The server serving it.
    pub server: u32,
    /// The fencing token of the lease this dispatch runs under. The driver
    /// must hand it back with the result ([`QueryHandler::on_task_complete`]
    /// / [`QueryHandler::on_task_lost`]) so a stale incarnation's report can
    /// be rejected.
    pub lease: LeaseToken,
}

/// A fully aggregated query (its slowest task just completed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryDone {
    /// The completed query.
    pub query: QueryId,
    /// Its service class.
    pub class: u8,
    /// Its fanout.
    pub fanout: u32,
    /// Arrival-to-last-task latency.
    pub latency: SimDuration,
    /// Whether the latency was recorded into the handler's reservoirs.
    pub recorded: bool,
    /// Whether the query completed gracefully degraded — at its partial
    /// quorum, with fewer than `fanout` task results (its latency then goes
    /// to [`SchedStats::partial_latency`], not the SLO reservoirs).
    pub partial: bool,
}

/// Everything that follows from one task completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCompletion {
    /// The freed server's next task, if its queue was non-empty (work
    /// conservation: popped *before* any successor query is issued).
    pub next: Option<DispatchedTask>,
    /// The completed query, when this was its last outstanding task.
    pub done: Option<QueryDone>,
    /// The fencing verdict. Only [`CommitOutcome::Committed`] results were
    /// applied; for `Duplicate`/`Stale` the completion was suppressed and
    /// the driver must discard the result's payload too.
    pub commit: CommitOutcome,
}

/// The driver's cue to reissue a fault-lost task on a backup server: call
/// [`QueryHandler::issue_duplicate`] with this slot and server (the
/// simulator first draws a fresh service time for the backup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPlan {
    /// The logical task (slot) to reissue.
    pub slot: TaskId,
    /// The chosen backup server.
    pub server: u32,
}

/// Everything that follows from one task being lost to a fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LostTask {
    /// The freed server's next task, if any (a lost task still frees its
    /// server — blackout drops are failures of the *task*, and the sim's
    /// server keeps draining; the testbed node likewise moves on).
    pub next: Option<DispatchedTask>,
    /// A retry to issue, when the mitigation config allows one.
    pub retry: Option<RetryPlan>,
    /// The query, when this loss resolved its last outstanding slot.
    pub done: Option<QueryDone>,
}

/// Measurements the handler accumulates; extracted with
/// [`QueryHandler::into_stats`] when the run completes.
#[derive(Debug)]
pub struct SchedStats {
    /// Query latencies per class (recorded queries only).
    pub query_latency_by_class: BTreeMap<u8, LatencyReservoir>,
    /// Query latencies per `(class, fanout)` type (recorded queries only).
    pub query_latency_by_type: BTreeMap<QueryTypeKey, LatencyReservoir>,
    /// Task pre-dequeuing times (queuing delay before entering service).
    pub pre_dequeue: LatencyReservoir,
    /// Load accounting (busy time, accepted/rejected work, miss counts).
    pub load: LoadStats,
    /// Executed service time per server.
    pub busy_by_server: Vec<SimDuration>,
    /// Queries completed with `record` set.
    pub completed_queries: u64,
    /// Queries rejected by admission control.
    pub rejected_queries: u64,
    /// Admission reject→admit transitions (rejection *stopped* after the
    /// window recovered or drained).
    pub admission_resumes: u64,
    /// Fault/hedge/partial counters (all zero without faults/mitigation).
    pub robustness: RobustnessStats,
    /// Latencies of partially completed queries (recorded separately from
    /// the per-class SLO reservoirs so degradation cannot flatter the tail).
    pub partial_latency: LatencyReservoir,
    /// Lifecycle gauges/counters from the task state store (leases issued,
    /// reclaims, fenced commits). Filled by [`QueryHandler::into_stats`];
    /// read live via [`QueryHandler::lifecycle`].
    pub lifecycle: LifecycleStats,
    /// Health/ejection counters (all zero without a health config). Filled
    /// by [`QueryHandler::into_stats`]; read live via
    /// [`QueryHandler::health`].
    pub health: HealthStats,
    /// Final per-server health scores (EWMA of observed post-queuing
    /// times, ms). Empty without a health config.
    pub server_health: Vec<f64>,
    /// Adaptive-estimator window rolls (0 without
    /// [`crate::AdaptiveWindow`]). Filled by [`QueryHandler::into_stats`].
    pub estimator_window_rolls: u64,
}

/// The installed [`TraceSink`] plus the handler-side event stage.
///
/// For a sink whose [`TraceSink::batch_hint`] is 1 every event goes
/// straight through [`TraceSink::record`]. For a batching sink the hot
/// emission path is an inlined `Vec` push — no virtual dispatch — and the
/// stage is handed over in [`TraceSink::record_batch`] runs when it fills.
/// The `Drop` impl delivers the final partial batch, and because dropping
/// a partially-moved struct still drops its remaining fields, the stage
/// survives [`QueryHandler::into_stats`] moving the measurements out.
struct Tracer {
    sink: Box<dyn TraceSink>,
    stage: Vec<TraceEvent>,
    /// Cached `sink.batch_hint().max(1)`.
    batch: usize,
}

impl Tracer {
    fn new(sink: Box<dyn TraceSink>) -> Tracer {
        let batch = sink.batch_hint().max(1);
        Tracer {
            sink,
            stage: Vec::with_capacity(if batch > 1 { batch } else { 0 }),
            batch,
        }
    }

    /// Emits one event: immediate delivery for per-event sinks, a staged
    /// push (flushed on batch boundaries) for batching sinks.
    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        if self.batch == 1 {
            self.sink.record(&ev);
            return;
        }
        self.stage.push(ev);
        if self.stage.len() >= self.batch {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if !self.stage.is_empty() {
            self.sink.record_batch(&self.stage);
            self.stage.clear();
        }
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.flush();
    }
}

struct QueryMeta {
    class: u8,
    fanout: u32,
    started_at: SimTime,
    /// Unresolved slots (not tasks: hedge copies do not inflate it).
    outstanding: u32,
    record: bool,
    /// First slot id; the query's slots are `first_task..first_task+fanout`.
    first_task: TaskId,
    /// Slots resolved by a completed attempt.
    completed_slots: u32,
    /// Slots resolved by exhausting every attempt to faults.
    lost_slots: u32,
    /// Completed slots needed to finish (equals `fanout` without a
    /// [`MitigationConfig::partial_quorum`]).
    quorum: u32,
    done: bool,
}

struct ServerSlot {
    queue: Box<dyn TaskQueue>,
    in_service: Option<TaskId>,
}

/// The TailGuard scheduling core shared by the simulator and the testbed.
///
/// # Example
///
/// A driver is three calls: present arrivals, start the dispatched tasks,
/// report completions.
///
/// ```
/// use tailguard_policy::Policy;
/// use tailguard_sched::{
///     AdmitDecision, ClassSpec, ClusterSpec, DeadlineEstimator, EstimatorMode, QueryArrival,
///     QueryHandler,
/// };
/// use tailguard_dist::Deterministic;
/// use tailguard_simcore::{SimDuration, SimTime};
///
/// let cluster = ClusterSpec::homogeneous(2, Deterministic::new(1.0));
/// let classes = vec![ClassSpec::p99(SimDuration::from_millis(10))];
/// let estimator = DeadlineEstimator::new(&cluster, classes.clone(), EstimatorMode::Analytic);
/// let mut handler = QueryHandler::new(Policy::TfEdf, classes, 2, estimator, None);
///
/// let mut started = Vec::new();
/// let decision = handler.on_query_arrival(
///     SimTime::ZERO,
///     QueryArrival {
///         class: 0,
///         targets: &[0, 1],
///         sizes: None,
///         budget_override: None,
///         task_budgets: None,
///         record: true,
///     },
///     &mut started,
/// );
/// assert!(matches!(decision, AdmitDecision::Admitted { .. }));
/// assert_eq!(started.len(), 2); // both servers were idle
///
/// // The slowest task completes the query; each result carries the lease
/// // token its dispatch ran under, so stale incarnations can be fenced.
/// let ms = SimDuration::from_millis(1);
/// let first =
///     handler.on_task_complete(SimTime::ZERO + ms, started[0].task, started[0].lease, ms);
/// assert!(first.done.is_none());
/// let last =
///     handler.on_task_complete(SimTime::ZERO + ms, started[1].task, started[1].lease, ms);
/// assert_eq!(last.done.expect("query aggregated").latency, ms);
/// ```
pub struct QueryHandler {
    policy: Policy,
    classes: Vec<ClassSpec>,
    estimator: DeadlineEstimator,
    servers: Vec<ServerSlot>,
    /// The durable lifecycle store: per-attempt state machine, slot
    /// bookkeeping, lease issuance, and fenced commits.
    store: TaskStateStore,
    queries: Vec<QueryMeta>,
    admission: Option<AdmissionController>,
    mitigation: Option<MitigationConfig>,
    health: Option<HealthTracker>,
    /// Outstanding hedge+retry copies per class, for the
    /// [`MitigationConfig::hedge_budget`] token bucket.
    outstanding_dups: Vec<u32>,
    stats: SchedStats,
    /// The flight-recorder sink plus its handler-side event stage (see
    /// [`Tracer`]).
    tracer: Tracer,
    /// Cached `sink.enabled()`: every emission point is `if self.trace_on`,
    /// so disabled tracing costs one predictable branch and never builds
    /// the event.
    trace_on: bool,
    /// The admission state after the previous `admission_rejects` call,
    /// for pause/resume edge detection.
    admission_was_rejecting: bool,
}

impl std::fmt::Debug for QueryHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandler")
            .field("policy", &self.policy)
            .field("servers", &self.servers.len())
            .field("queries", &self.queries.len())
            .field("tasks", &self.store.len())
            .finish()
    }
}

impl QueryHandler {
    /// Creates a handler for `servers` task servers under `policy`.
    ///
    /// The estimator is built by the driver (the simulator seeds it from
    /// analytic CDFs or an offline RNG pass; the testbed calibrates it with
    /// live probes) and handed over here; from then on the handler feeds it
    /// observed post-queuing times (§III.B.2's online updating process).
    ///
    /// # Panics
    ///
    /// Panics when `classes` is empty or `servers` is zero.
    pub fn new(
        policy: Policy,
        classes: Vec<ClassSpec>,
        servers: usize,
        estimator: DeadlineEstimator,
        admission: Option<AdmissionConfig>,
    ) -> Self {
        assert!(!classes.is_empty(), "need at least one class");
        let class_count = classes.len();
        QueryHandler {
            policy,
            classes,
            estimator,
            servers: (0..servers)
                .map(|_| ServerSlot {
                    queue: policy.new_queue(),
                    in_service: None,
                })
                .collect(),
            store: TaskStateStore::new(None),
            queries: Vec::new(),
            admission: admission.map(AdmissionController::new),
            mitigation: None,
            health: None,
            outstanding_dups: vec![0; class_count],
            stats: SchedStats {
                query_latency_by_class: BTreeMap::new(),
                query_latency_by_type: BTreeMap::new(),
                pre_dequeue: LatencyReservoir::new(),
                load: LoadStats::new(servers),
                busy_by_server: vec![SimDuration::ZERO; servers],
                completed_queries: 0,
                rejected_queries: 0,
                admission_resumes: 0,
                robustness: RobustnessStats::default(),
                partial_latency: LatencyReservoir::new(),
                lifecycle: LifecycleStats::default(),
                health: HealthStats::default(),
                server_health: Vec::new(),
                estimator_window_rolls: 0,
            },
            tracer: Tracer::new(Box::new(NullSink)),
            trace_on: false,
            admission_was_rejecting: false,
        }
    }

    /// Installs a flight-recorder sink (see [`TraceSink`]). The default is
    /// [`NullSink`]; handing one in explicitly is equivalent to the
    /// default. `sink.enabled()` is cached here, so a disabled sink keeps
    /// the hot path free of event construction.
    pub fn with_trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace_on = sink.enabled();
        self.tracer = Tracer::new(sink);
        self
    }

    /// Enables straggler/fault mitigation (hedging, retries, partial
    /// quorum). Without it the handler behaves exactly as before: one
    /// attempt per task, queries complete when every task returns.
    pub fn with_mitigation(mut self, mitigation: MitigationConfig) -> Self {
        self.mitigation = Some(mitigation);
        self
    }

    /// The mitigation config, when one was set.
    pub fn mitigation(&self) -> Option<&MitigationConfig> {
        self.mitigation.as_ref()
    }

    /// Enables per-server health scoring with hysteresis-gated outlier
    /// ejection (see [`HealthTracker`]). Tasks aimed at an ejected server
    /// are diverted to the least-loaded healthy server (keeping their
    /// stamped deadline — Eq. 6 stamps once, at arrival), except for the
    /// periodic recovery probe; backup selection for hedges and retries
    /// also skips ejected servers. Without it the handler behaves exactly
    /// as before.
    pub fn with_health(mut self, config: HealthConfig) -> Self {
        self.health = Some(HealthTracker::new(config, self.servers.len()));
        self
    }

    /// The health tracker, when health scoring is enabled.
    pub fn health(&self) -> Option<&HealthTracker> {
        self.health.as_ref()
    }

    /// Enables lease expiry: every dispatch's lease carries
    /// `expires_at = now + ttl`, and the driver is expected to call
    /// [`QueryHandler::on_lease_expired`] at that instant so crashed
    /// servers' work is reclaimed. Without a TTL leases never expire and
    /// the handler behaves exactly as before (fencing stays active but can
    /// never reject anything, since no lease is ever superseded).
    /// `ttl` is a virtual-time duration (nanosecond domain).
    pub fn with_lease(mut self, ttl: SimDuration) -> Self {
        self.store.set_lease_ttl(Some(ttl));
        self
    }

    /// The configured lease TTL, if any.
    pub fn lease_ttl(&self) -> Option<SimDuration> {
        self.store.lease_ttl()
    }

    /// Handles one query arrival at `now`: admission (§III.C), deadline
    /// stamping (Eq. 6), and task enqueue/dispatch.
    ///
    /// Tasks landing on idle servers enter service immediately and are
    /// appended to `started` (cleared first; reusing one buffer across calls
    /// keeps the hot path allocation-free) in target order — the driver must
    /// begin their actual work. On rejection no state is created and the
    /// query's would-be work (from `sizes`, if given) is accounted as
    /// rejected load.
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range, a target server index is out of
    /// range, or `sizes`/`task_budgets` lengths disagree with `targets`.
    /// `now` is virtual time (nanosecond domain).
    pub fn on_query_arrival(
        &mut self,
        now: SimTime,
        arrival: QueryArrival<'_>,
        started: &mut Vec<DispatchedTask>,
    ) -> AdmitDecision {
        started.clear();
        assert!(
            (arrival.class as usize) < self.classes.len(),
            "query class {} out of range",
            arrival.class
        );
        if let Some(sizes) = arrival.sizes {
            assert_eq!(
                sizes.len(),
                arrival.targets.len(),
                "size hint count must equal fanout"
            );
        }
        self.stats.load.query_offered();

        if self.admission_rejects(now) {
            self.stats.rejected_queries += 1;
            if let Some(sizes) = arrival.sizes {
                for &svc in sizes {
                    self.stats.load.record_rejected_work(svc);
                }
            }
            if self.trace_on {
                self.tracer.emit(TraceEvent::QueryRejected {
                    at: now,
                    class: arrival.class,
                    fanout: units::sat_usize_to_u32(arrival.targets.len()),
                });
            }
            return AdmitDecision::Rejected;
        }
        self.stats.load.query_accepted();

        // Eq. 6 (or the baseline's rule): the shared queuing deadline.
        let fanout = units::sat_usize_to_u32(arrival.targets.len());
        let budget = match arrival.budget_override {
            Some(b) => b,
            None => match self.policy.deadline_rule() {
                // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
                DeadlineRule::SloOnly => self.classes[arrival.class as usize].slo,
                // FIFO/PRIQ ignore deadlines for ordering; we still stamp
                // the TailGuard deadline so miss accounting is comparable.
                DeadlineRule::SloAndFanout | DeadlineRule::Unused => {
                    self.estimator
                        .budget(arrival.class, fanout, arrival.targets)
                }
            },
        };
        let deadline = now + budget;
        if let Some(tb) = arrival.task_budgets {
            assert_eq!(
                tb.len(),
                arrival.targets.len(),
                "task budget count must equal fanout"
            );
        }

        // Graceful degradation (when configured): the query may complete
        // "partial" once a quorum of its slots has a result.
        let quorum = match self.mitigation.as_ref().and_then(|m| m.partial_quorum) {
            // tg-lint: allow(lossy-cast) -- guarded: the ceil'd product is clamped to `1..=fanout` immediately, so any NaN/overflow truncation is erased by the clamp
            Some(f) => ((f64::from(fanout) * f).ceil() as u32).clamp(1, fanout),
            None => fanout,
        };
        let hedge_after = self.mitigation.as_ref().and_then(|m| m.hedge_after);

        let query = self.queries.len() as QueryId;
        self.queries.push(QueryMeta {
            class: arrival.class,
            fanout,
            started_at: now,
            outstanding: fanout,
            record: arrival.record,
            first_task: self.store.len() as TaskId,
            completed_slots: 0,
            lost_slots: 0,
            quorum,
            done: false,
        });
        if self.trace_on {
            self.tracer.emit(TraceEvent::QueryAdmitted {
                at: now,
                query,
                class: arrival.class,
                fanout,
                deadline,
            });
        }

        for (idx, &server) in arrival.targets.iter().enumerate() {
            // Outlier ejection: a task aimed at an ejected server diverts
            // to the least-loaded healthy server (every `probe_every`-th
            // task still goes through as a recovery probe). The deadline
            // below is stamped from the *requested* placement — Eq. 6
            // stamps once, at arrival; diversion must not re-budget.
            let divert = match &mut self.health {
                Some(h) => h.should_divert(server as usize),
                None => false,
            };
            let server = if divert {
                self.healthy_backup(server).unwrap_or(server)
            } else {
                server
            };
            // Footnote-4 ablation hook: per-task deadlines when provided.
            let (task_budget, task_deadline) = match arrival.task_budgets {
                // tg-lint: allow(panic-surface) -- aligned-by-contract with `arrival.targets` (documented on `QueryArrival`); `idx` enumerates `targets`, so a length mismatch is a driver bug surfaced loudly
                Some(tb) => (tb[idx], now + tb[idx]),
                None => (budget, deadline),
            };
            // Deadline-aware hedge trigger: a fraction of the queuing
            // budget after arrival (the remaining budget has crossed
            // the threshold once it fires).
            let hedge_at = hedge_after.map(|f| now + task_budget.mul_f64(f));
            let task = self
                .store
                .push_original(query, server, task_deadline, hedge_at);
            self.stats.load.task_dispatched();
            let mut entry = QueuedTask::new(
                u64::from(task),
                ServiceClass(arrival.class),
                task_deadline,
                now,
            );
            if let Some(sizes) = arrival.sizes {
                // tg-lint: allow(panic-surface) -- aligned-by-contract with `arrival.targets` (documented on `QueryArrival`); `idx` enumerates `targets`, so a length mismatch is a driver bug surfaced loudly
                entry = entry.with_size_hint(sizes[idx]);
            }
            if self.trace_on {
                self.tracer.emit(TraceEvent::TaskEnqueued {
                    at: now,
                    task,
                    slot: task,
                    query,
                    class: arrival.class,
                    server,
                    kind: AttemptKind::Original,
                    deadline: task_deadline,
                });
            }
            // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
            if self.servers[server as usize].in_service.is_none() {
                // Idle server: immediate dequeue, by definition on time.
                let dispatched = self.start(now, server, entry);
                started.push(dispatched);
            } else {
                // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
                self.servers[server as usize].queue.push(entry);
            }
        }
        AdmitDecision::Admitted { query }
    }

    /// Handles the completion of `task` at `now` under the lease `token`
    /// its dispatch carried, where `busy` is the service time the server
    /// actually spent on it (the simulator's drawn service; the testbed's
    /// measured dispatch→result time).
    ///
    /// The commit is fenced first: a redelivered result of an already
    /// terminal attempt is suppressed idempotently, and a result from a
    /// reclaimed (zombie) incarnation is rejected by token mismatch — both
    /// return without touching server state, accounting, or aggregation,
    /// and the driver must discard the result's payload (see
    /// [`TaskCompletion::commit`]).
    ///
    /// For a committed result, in order: busy/estimator accounting, work
    /// conservation (the freed server pulls its next task — reported in
    /// [`TaskCompletion::next`] *before* any successor work, so a chained
    /// query cannot jump the queue), then fanout aggregation.
    ///
    /// # Panics
    ///
    /// Panics when `task` is unknown; debug-asserts a committed result's
    /// task is the task in service at its server.
    /// `now` is virtual time (nanosecond domain).
    // tg-lint: hot(complete)
    pub fn on_task_complete(
        &mut self,
        now: SimTime,
        task: TaskId,
        token: LeaseToken,
        busy: SimDuration,
    ) -> TaskCompletion {
        let rec = *self.store.attempt(task);
        let (query, server, slot, kind) = (rec.query, rec.server, rec.slot, rec.kind);
        match self.store.commit(task, token) {
            CommitOutcome::Committed => {}
            outcome @ CommitOutcome::Duplicate => {
                if self.trace_on {
                    self.tracer.emit(TraceEvent::DuplicateSuppressed {
                        at: now,
                        task,
                        query,
                        server,
                    });
                }
                return TaskCompletion {
                    next: None,
                    done: None,
                    commit: outcome,
                };
            }
            outcome @ CommitOutcome::Stale => {
                if self.trace_on {
                    self.tracer.emit(TraceEvent::StaleCommitRejected {
                        at: now,
                        task,
                        query,
                        server,
                        token,
                    });
                }
                return TaskCompletion {
                    next: None,
                    done: None,
                    commit: outcome,
                };
            }
        }
        debug_assert_eq!(
            // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
            self.servers[server as usize].in_service,
            Some(task),
            "a committed completion implies the task is in service at its server"
        );
        self.stats.load.record_busy(busy);
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        self.stats.busy_by_server[server as usize] += busy;
        // Online updating process (§III.B.2): the handler learns the
        // server's post-queuing time distribution from returned results.
        self.estimator.record_post_queuing(server as usize, busy);
        // The health tracker watches the same completion stream. Ejection
        // flips happen inside its amortized evaluation, so they surface
        // here — drained even when tracing is off to keep the buffer empty.
        if let Some(h) = &mut self.health {
            h.observe(server as usize, busy);
            while let Some((flipped, ejected)) = h.take_transition() {
                if self.trace_on {
                    let ev = if ejected {
                        TraceEvent::ServerEjected {
                            at: now,
                            server: flipped,
                        }
                    } else {
                        TraceEvent::ServerReadmitted {
                            at: now,
                            server: flipped,
                        }
                    };
                    self.tracer.emit(ev);
                }
            }
        }
        if kind != AttemptKind::Original {
            self.release_dup(query);
        }
        if self.trace_on {
            // Emitted before the freed server's next dequeue so the stream
            // reads completion-then-dequeue at equal timestamps.
            self.tracer.emit(TraceEvent::TaskCompleted {
                at: now,
                task,
                slot,
                query,
                server,
                busy,
                won: !self.store.slot(slot).resolved,
            });
        }

        let next = self.on_server_free(now, server);
        let slot_state = self.store.slot_mut(slot);
        slot_state.live -= 1;
        let done = if slot_state.resolved {
            // A duplicate already resolved this slot: the completion is a
            // loser — its work was done (busy accounting stands) but its
            // result is ignored.
            self.stats.robustness.cancelled_tasks += 1;
            None
        } else {
            // First completion wins the slot.
            slot_state.resolved = true;
            self.stats.robustness.task_wins += 1;
            if kind == AttemptKind::Hedge {
                self.stats.robustness.hedge_wins += 1;
            }
            self.resolve_slot(now, query, false)
        };
        TaskCompletion {
            next,
            done,
            commit: CommitOutcome::Committed,
        }
    }
    // tg-lint: endhot

    /// Handles the loss of `task` — in service at its server under the
    /// lease `token` — to an injected fault (blackout drop) or a worker
    /// failure. The loss report is fenced exactly like a commit: a stale
    /// incarnation's loss (its lease was already reclaimed) or a redundant
    /// report for a terminal attempt is a no-op. For a committed loss the
    /// server is freed (no busy time is recorded: the work produced nothing
    /// the estimator should learn from), and the slot either retries on a
    /// backup server (see [`LostTask::retry`]), keeps waiting for another
    /// live attempt, or — with every attempt exhausted — resolves as lost,
    /// possibly finishing the query as partial or failed.
    ///
    /// # Panics
    ///
    /// Panics when `task` is unknown; debug-asserts a committed loss's task
    /// is in service.
    /// `now` is virtual time (nanosecond domain).
    pub fn on_task_lost(&mut self, now: SimTime, task: TaskId, token: LeaseToken) -> LostTask {
        let rec = *self.store.attempt(task);
        let (query, server, slot) = (rec.query, rec.server, rec.slot);
        match self.store.fail(task, token) {
            CommitOutcome::Committed => {}
            CommitOutcome::Duplicate => {
                if self.trace_on {
                    self.tracer.emit(TraceEvent::DuplicateSuppressed {
                        at: now,
                        task,
                        query,
                        server,
                    });
                }
                return LostTask {
                    next: None,
                    retry: None,
                    done: None,
                };
            }
            CommitOutcome::Stale => {
                if self.trace_on {
                    self.tracer.emit(TraceEvent::StaleCommitRejected {
                        at: now,
                        task,
                        query,
                        server,
                        token,
                    });
                }
                return LostTask {
                    next: None,
                    retry: None,
                    done: None,
                };
            }
        }
        debug_assert_eq!(
            // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
            self.servers[server as usize].in_service,
            Some(task),
            "a committed loss implies the task is in service at its server"
        );
        if self.trace_on {
            self.tracer.emit(TraceEvent::TaskLost {
                at: now,
                task,
                slot,
                query,
                server,
            });
        }
        if rec.kind != AttemptKind::Original {
            self.release_dup(query);
        }
        let next = self.on_server_free(now, server);
        let slot_state = self.store.slot_mut(slot);
        slot_state.live -= 1;
        if slot_state.resolved {
            // The slot already has a winner; losing a loser is a wash.
            self.stats.robustness.cancelled_tasks += 1;
            return LostTask {
                next,
                retry: None,
                done: None,
            };
        }
        self.stats.robustness.tasks_lost_to_faults += 1;
        let wants_retry = self
            .mitigation
            .as_ref()
            .is_some_and(|m| m.retry_lost && self.store.slot(slot).attempts < m.max_attempts);
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        let class = self.queries[query as usize].class;
        let can_retry = wants_retry && self.dup_budget_available(class);
        if wants_retry && !can_retry && self.trace_on {
            self.tracer.emit(TraceEvent::HedgeBudgetExhausted {
                at: now,
                slot,
                query,
                class,
            });
        }
        let retry = if can_retry {
            self.backup_server(slot)
                .map(|server| RetryPlan { slot, server })
        } else {
            None
        };
        let done = if retry.is_none() && self.store.slot(slot).live == 0 {
            // Every attempt is gone: the slot resolves as lost.
            self.store.slot_mut(slot).resolved = true;
            self.resolve_slot(now, query, true)
        } else {
            None
        };
        LostTask { next, retry, done }
    }

    /// Releases `server` and pulls its next queued task into service, if
    /// any. Queued attempts whose slot was already resolved (hedge losers,
    /// stragglers of early-quorum queries) are discarded here — the
    /// cancel-at-dequeue that a [`TaskQueue`] without arbitrary removal
    /// supports. [`QueryHandler::on_task_complete`] calls this internally;
    /// drivers only need it when a server frees up without completing a
    /// task (e.g. a cancelled assignment).
    pub fn on_server_free(&mut self, now: SimTime, server: u32) -> Option<DispatchedTask> {
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        self.servers[server as usize].in_service = None;
        loop {
            // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
            let entry = self.servers[server as usize].queue.pop()?;
            let task = entry.task_id as TaskId;
            let rec = *self.store.attempt(task);
            let slot = rec.slot;
            if self.store.slot(slot).resolved {
                self.store.cancel(task);
                self.store.slot_mut(slot).live -= 1;
                self.stats.robustness.cancelled_tasks += 1;
                if rec.kind != AttemptKind::Original {
                    self.release_dup(rec.query);
                }
                if self.trace_on {
                    self.tracer.emit(TraceEvent::TaskCancelled {
                        at: now,
                        task,
                        slot,
                        query: rec.query,
                        server,
                    });
                }
                continue;
            }
            return Some(self.start(now, server, entry));
        }
    }

    /// When the hedge copy of `task` (an original attempt) becomes due, if
    /// hedging is configured — the driver schedules its hedge check here.
    pub fn hedge_deadline(&self, task: TaskId) -> Option<SimTime> {
        self.store.slot(task).hedge_at
    }

    /// Picks a backup server for the slot of `task` when a hedge is still
    /// worthwhile: the slot is unresolved, attempts remain under
    /// [`MitigationConfig::max_attempts`], the class has token-bucket
    /// budget left ([`MitigationConfig::hedge_budget`]), and an untried
    /// healthy server exists. The driver follows up with
    /// [`QueryHandler::issue_duplicate`]. A budget denial is narrated as
    /// [`TraceEvent::HedgeBudgetExhausted`] at `now` (the hedge-check
    /// instant).
    /// `now` is virtual time (nanosecond domain).
    pub fn hedge_target(&mut self, now: SimTime, task: TaskId) -> Option<u32> {
        let m = self.mitigation.as_ref()?;
        let slot_state = self.store.slot(task);
        if slot_state.resolved || slot_state.attempts >= m.max_attempts {
            return None;
        }
        let query = self.store.attempt(task).query;
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        let class = self.queries[query as usize].class;
        if !self.dup_budget_available(class) {
            if self.trace_on {
                self.tracer.emit(TraceEvent::HedgeBudgetExhausted {
                    at: now,
                    slot: task,
                    query,
                    class,
                });
            }
            return None;
        }
        self.backup_server(task)
    }

    /// Whether `class` has hedge/retry token-bucket budget left. A denial
    /// counts in [`RobustnessStats::budget_exhausted`]; without a
    /// configured budget the bucket is bottomless.
    fn dup_budget_available(&mut self, class: u8) -> bool {
        let Some(cap) = self.mitigation.as_ref().and_then(|m| m.hedge_budget) else {
            return true;
        };
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        if self.outstanding_dups[class as usize] >= cap {
            self.stats.robustness.budget_exhausted += 1;
            return false;
        }
        true
    }

    /// Returns the terminal non-original attempt of `query`'s class to the
    /// token bucket.
    fn release_dup(&mut self, query: QueryId) {
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        let class = self.queries[query as usize].class as usize;
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        debug_assert!(self.outstanding_dups[class] > 0, "token-bucket underflow");
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        self.outstanding_dups[class] = self.outstanding_dups[class].saturating_sub(1);
    }

    /// The least-loaded server (queue depth + in-service occupancy, lowest
    /// index breaking ties — deterministic) that this slot has not yet
    /// tried, skipping ejected servers. `None` when every candidate was
    /// tried or is ejected.
    fn backup_server(&self, slot: TaskId) -> Option<u32> {
        let origin = self.store.attempt(slot).server;
        let tried = &self.store.slot(slot).extra_servers;
        let mut best: Option<(usize, u32)> = None;
        for (i, s) in self.servers.iter().enumerate() {
            let i = units::sat_usize_to_u32(i);
            if i == origin || tried.contains(&i) {
                continue;
            }
            if self
                .health
                .as_ref()
                .is_some_and(|h| h.is_ejected(i as usize))
            {
                continue;
            }
            let depth = s.queue.len() + usize::from(s.in_service.is_some());
            if best.is_none_or(|(d, _)| depth < d) {
                best = Some((depth, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// The least-loaded healthy server other than `exclude` (lowest index
    /// breaking ties — deterministic); `None` when no other healthy server
    /// exists (the quorum floor makes this unreachable in practice, but
    /// diversion then falls back to the original target).
    fn healthy_backup(&self, exclude: u32) -> Option<u32> {
        let h = self.health.as_ref()?;
        let mut best: Option<(usize, u32)> = None;
        for (i, s) in self.servers.iter().enumerate() {
            let i = units::sat_usize_to_u32(i);
            if i == exclude || h.is_ejected(i as usize) {
                continue;
            }
            let depth = s.queue.len() + usize::from(s.in_service.is_some());
            if best.is_none_or(|(d, _)| depth < d) {
                best = Some((depth, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Issues a hedge or retry copy of `slot` (an original task id) on
    /// `server`, with an optional size hint (the simulator's fresh service
    /// draw for the backup). Returns the new attempt's task id and, when
    /// the backup server was idle, the dispatch the driver must begin.
    ///
    /// # Panics
    ///
    /// Debug-asserts the slot is unresolved and `kind` is not
    /// [`AttemptKind::Original`].
    /// `now` is virtual time (nanosecond domain).
    pub fn issue_duplicate(
        &mut self,
        now: SimTime,
        slot: TaskId,
        server: u32,
        size: Option<SimDuration>,
        kind: AttemptKind,
    ) -> (TaskId, Option<DispatchedTask>) {
        let query = self.store.attempt(slot).query;
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        let class = self.queries[query as usize].class;
        let deadline = self.store.slot(slot).deadline;
        let task = self.store.push_duplicate(slot, server, kind);
        match kind {
            AttemptKind::Hedge => self.stats.robustness.hedges_issued += 1,
            AttemptKind::Retry => self.stats.robustness.retries += 1,
            AttemptKind::Original => {}
        }
        if kind != AttemptKind::Original {
            // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
            self.outstanding_dups[class as usize] += 1;
        }
        self.stats.load.task_dispatched();
        if self.trace_on {
            if kind == AttemptKind::Hedge {
                self.tracer.emit(TraceEvent::HedgeIssued {
                    at: now,
                    task,
                    slot,
                    query,
                    server,
                });
            }
            self.tracer.emit(TraceEvent::TaskEnqueued {
                at: now,
                task,
                slot,
                query,
                class,
                server,
                kind,
                deadline,
            });
        }
        let mut entry = QueuedTask::new(u64::from(task), ServiceClass(class), deadline, now);
        if let Some(size) = size {
            entry = entry.with_size_hint(size);
        }
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        let dispatched = if self.servers[server as usize].in_service.is_none() {
            Some(self.start(now, server, entry))
        } else {
            // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
            self.servers[server as usize].queue.push(entry);
            None
        };
        (task, dispatched)
    }

    /// Handles an expired lease check for `task` at `now`: the driver
    /// schedules this at the dispatch's [`QueryHandler::lease_expiry`]
    /// instant (virtual time in the simulator; a wall timer in the
    /// testbed).
    ///
    /// A lease still active under exactly `token` past its expiry is
    /// **reclaimed**: the incarnation is presumed dead (crashed node,
    /// swallowed result), the attempt returns to `Queued`, and — unless its
    /// slot already resolved, in which case it is cancelled outright — it
    /// is re-enqueued on its server with the slot's *original* deadline
    /// `t_D` (Eq. 6 stamps the queuing deadline once, at arrival; recovery
    /// must not grant a crashed task fresh budget). The suspected server is
    /// then freed, so its queue keeps draining; the returned dispatch (often
    /// the reclaimed task itself, under a new lease) must be started by the
    /// driver. If the presumed-dead incarnation later reports anyway (false
    /// suspicion), its stale token fences it off.
    ///
    /// Checks for leases that were already committed, superseded, or not
    /// yet expired are no-ops returning `None`.
    pub fn on_lease_expired(
        &mut self,
        now: SimTime,
        task: TaskId,
        token: LeaseToken,
    ) -> Option<DispatchedTask> {
        if !self.store.reclaim_expired(task, token, now) {
            return None;
        }
        let rec = *self.store.attempt(task);
        debug_assert_eq!(
            // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
            self.servers[rec.server as usize].in_service,
            Some(task),
            "a reclaimed lease implies the task was in service at its server"
        );
        if self.trace_on {
            self.tracer.emit(TraceEvent::LeaseReclaimed {
                at: now,
                task,
                query: rec.query,
                server: rec.server,
                token,
            });
        }
        if self.store.slot(rec.slot).resolved {
            // The slot resolved while this attempt sat on the dead server:
            // nothing left to recover, the attempt is cancelled.
            self.store.cancel(task);
            self.store.slot_mut(rec.slot).live -= 1;
            self.stats.robustness.cancelled_tasks += 1;
            if rec.kind != AttemptKind::Original {
                self.release_dup(rec.query);
            }
            if self.trace_on {
                self.tracer.emit(TraceEvent::TaskCancelled {
                    at: now,
                    task,
                    slot: rec.slot,
                    query: rec.query,
                    server: rec.server,
                });
            }
        } else {
            // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
            let class = self.queries[rec.query as usize].class;
            let deadline = self.store.slot(rec.slot).deadline;
            let entry = QueuedTask::new(u64::from(task), ServiceClass(class), deadline, now);
            if self.trace_on {
                self.tracer.emit(TraceEvent::TaskEnqueued {
                    at: now,
                    task,
                    slot: rec.slot,
                    query: rec.query,
                    class,
                    server: rec.server,
                    kind: rec.kind,
                    deadline,
                });
            }
            // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
            self.servers[rec.server as usize].queue.push(entry);
        }
        // Free the suspected-dead server so its queue drains; this may pop
        // the reclaimed task itself, re-dispatching it under a new lease.
        self.on_server_free(now, rec.server)
    }

    /// When the current lease of `task` expires, if it holds one with a
    /// TTL — the driver schedules the reclaim check
    /// ([`QueryHandler::on_lease_expired`]) here.
    pub fn lease_expiry(&self, task: TaskId) -> Option<SimTime> {
        self.store.lease_expiry(task)
    }

    /// Dequeues `entry` into service on `server`: miss detection at dequeue
    /// time (`t_dequeue > t_D`), window/load accounting, pre-dequeue wait
    /// recording, and lease issuance — the dispatch runs under a fresh
    /// fencing token from here on.
    // tg-lint: hot(dequeue)
    fn start(&mut self, now: SimTime, server: u32, entry: QueuedTask) -> DispatchedTask {
        let missed = now > entry.deadline;
        self.stats.load.task_completed(missed);
        if let Some(adm) = &mut self.admission {
            adm.record(now, missed);
        }
        let waited = now.saturating_since(entry.enqueued_at);
        let task = entry.task_id as TaskId;
        let rec = *self.store.attempt(task);
        let query = rec.query;
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        if self.queries[query as usize].record {
            self.stats.pre_dequeue.record(waited);
        }
        let lease = self.store.lease(task, now);
        self.store.mark_running(task);
        if self.trace_on {
            // Slack is signed: negative exactly when this dequeue is a miss.
            let slack_ns = units::signed_ns_delta(entry.deadline.as_nanos(), now.as_nanos());
            self.tracer.emit(TraceEvent::TaskDequeued {
                at: now,
                task,
                slot: rec.slot,
                query,
                // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
                class: self.queries[query as usize].class,
                kind: rec.kind,
                server,
                token: lease,
                waited,
                slack_ns,
            });
            if missed {
                self.tracer.emit(TraceEvent::DeadlineMissed {
                    at: now,
                    task,
                    query,
                    server,
                    late_by: now.saturating_since(entry.deadline),
                });
            }
        }
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        self.servers[server as usize].in_service = Some(task);
        DispatchedTask {
            task,
            server,
            lease,
        }
    }
    // tg-lint: endhot

    /// Accounts one resolved slot of `query` (won by a completion, or lost
    /// with every attempt exhausted) and finishes the query when its quorum
    /// is met or no slots remain — the generalized slowest-task-wins
    /// aggregation (quorum = fanout without a partial-quorum config).
    fn resolve_slot(&mut self, now: SimTime, query: QueryId, lost: bool) -> Option<QueryDone> {
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        let meta = &mut self.queries[query as usize];
        if meta.done {
            return None;
        }
        meta.outstanding = meta.outstanding.saturating_sub(1);
        if lost {
            meta.lost_slots += 1;
        } else {
            meta.completed_slots += 1;
        }
        if meta.completed_slots < meta.quorum && meta.outstanding > 0 {
            return None;
        }
        meta.done = true;
        let latency = now.saturating_since(meta.started_at);
        let (class, fanout, recorded) = (meta.class, meta.fanout, meta.record);
        let completed = meta.completed_slots;
        let partial = completed < fanout;
        let (first, last) = (meta.first_task, meta.first_task + fanout);
        // Early quorum: the query is done, so any unresolved straggler
        // slots resolve now — their in-flight attempts become losers,
        // cancelled at completion or dequeue.
        for slot in first..last {
            self.store.slot_mut(slot).resolved = true;
        }
        if recorded {
            if completed == 0 {
                // Nothing came back: the query failed outright.
                self.stats.robustness.failed_queries += 1;
            } else if partial {
                self.stats.robustness.partial_completions += 1;
                self.stats.partial_latency.record(latency);
            } else {
                self.stats
                    .query_latency_by_class
                    .entry(class)
                    .or_default()
                    .record(latency);
                self.stats
                    .query_latency_by_type
                    .entry(QueryTypeKey { class, fanout })
                    .or_default()
                    .record(latency);
                self.stats.completed_queries += 1;
            }
        }
        Some(QueryDone {
            query,
            class,
            fanout,
            latency,
            recorded,
            partial,
        })
    }

    fn admission_rejects(&mut self, now: SimTime) -> bool {
        match &mut self.admission {
            Some(adm) => {
                let rejects = adm.rejects(now);
                self.stats.admission_resumes = adm.resumes();
                if self.trace_on && rejects != self.admission_was_rejecting {
                    self.tracer.emit(if rejects {
                        TraceEvent::AdmissionPause { at: now }
                    } else {
                        TraceEvent::AdmissionResume { at: now }
                    });
                }
                self.admission_was_rejecting = rejects;
                rejects
            }
            None => false,
        }
    }

    /// The task currently in service at `server`, if any.
    pub fn task_in_service(&self, server: u32) -> Option<TaskId> {
        // tg-lint: allow(panic-surface) -- dense per-server/per-query/per-class tables sized at construction; `server` ids come from the admitted placement, `query`/`class` ids are minted/validated at admission — an out-of-range id is an internal-invariant breach where the documented panic is the designed failure mode
        self.servers[server as usize].in_service
    }

    /// Total tasks waiting in per-server queues right now (excludes tasks
    /// in service) — the queue-depth gauge the observability snapshots
    /// sample.
    pub fn queued_tasks(&self) -> usize {
        self.servers.iter().map(|s| s.queue.len()).sum()
    }

    /// Servers currently serving a task.
    pub fn servers_busy(&self) -> usize {
        self.servers
            .iter()
            .filter(|s| s.in_service.is_some())
            .count()
    }

    /// Total tasks created so far (task ids are `0..task_count()`).
    pub fn task_count(&self) -> usize {
        self.store.len()
    }

    /// The live lifecycle gauges/counters from the task state store.
    pub fn lifecycle(&self) -> &LifecycleStats {
        self.store.stats()
    }

    /// Total queries admitted so far (query ids are `0..query_count()`).
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The accumulated measurements, live.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// The class table.
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// The policy the per-server queues run.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The deadline estimator (e.g. to inspect cache statistics).
    pub fn estimator(&self) -> &DeadlineEstimator {
        &self.estimator
    }

    /// Consumes the handler, returning its measurements (with the final
    /// lifecycle, health, and estimator gauges/counters folded in).
    pub fn into_stats(self) -> SchedStats {
        let mut stats = self.stats;
        stats.lifecycle = self.store.stats().clone();
        if let Some(h) = &self.health {
            stats.health = h.stats().clone();
            stats.server_health = h.scores().to_vec();
        }
        stats.estimator_window_rolls = self.estimator.window_roll_count();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterSpec;
    use crate::estimator::EstimatorMode;
    use tailguard_dist::Deterministic;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis_f64(v)
    }

    fn handler(n: usize, policy: Policy, admission: Option<AdmissionConfig>) -> QueryHandler {
        let cluster = ClusterSpec::homogeneous(n, Deterministic::new(1.0));
        let classes = vec![ClassSpec::p99(ms(10.0))];
        let estimator = DeadlineEstimator::new(&cluster, classes.clone(), EstimatorMode::Analytic);
        QueryHandler::new(policy, classes, n, estimator, admission)
    }

    fn arrival<'a>(targets: &'a [u32], record: bool) -> QueryArrival<'a> {
        QueryArrival {
            class: 0,
            targets,
            sizes: None,
            budget_override: None,
            task_budgets: None,
            record,
        }
    }

    #[test]
    fn idle_servers_start_immediately_in_target_order() {
        let mut h = handler(3, Policy::TfEdf, None);
        let mut started = Vec::new();
        let d = h.on_query_arrival(SimTime::ZERO, arrival(&[2, 0], true), &mut started);
        assert_eq!(d, AdmitDecision::Admitted { query: 0 });
        assert_eq!(
            started,
            vec![
                DispatchedTask {
                    task: 0,
                    server: 2,
                    lease: LeaseToken(1)
                },
                DispatchedTask {
                    task: 1,
                    server: 0,
                    lease: LeaseToken(2)
                }
            ]
        );
        assert_eq!(h.task_in_service(2), Some(0));
        assert_eq!(h.task_in_service(1), None);
    }

    #[test]
    fn busy_server_queues_then_work_conserves() {
        let mut h = handler(1, Policy::Fifo, None);
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        assert_eq!(started.len(), 1);
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        assert!(started.is_empty(), "server busy: task must queue");

        let done = h.on_task_complete(SimTime::from_millis(3), 0, LeaseToken(1), ms(3.0));
        // Work conservation: the queued task enters service...
        assert_eq!(
            done.next,
            Some(DispatchedTask {
                task: 1,
                server: 0,
                lease: LeaseToken(2)
            })
        );
        assert_eq!(done.commit, CommitOutcome::Committed);
        // ...and the first query aggregates.
        let q = done.done.expect("fanout-1 query done");
        assert_eq!(q.query, 0);
        assert_eq!(q.latency, ms(3.0));
        // The second task waited 3ms in queue.
        assert_eq!(h.stats().pre_dequeue.clone().percentile(1.0), ms(3.0));
    }

    #[test]
    fn aggregation_is_slowest_task_wins() {
        let mut h = handler(2, Policy::TfEdf, None);
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0, 1], true), &mut started);
        let first = h.on_task_complete(
            SimTime::from_millis(1),
            started[0].task,
            started[0].lease,
            ms(1.0),
        );
        assert!(first.done.is_none(), "one task still outstanding");
        let last = h.on_task_complete(
            SimTime::from_millis(7),
            started[1].task,
            started[1].lease,
            ms(7.0),
        );
        let q = last.done.expect("all tasks returned");
        assert_eq!(q.latency, ms(7.0), "query latency = slowest task");
        assert_eq!(h.stats().completed_queries, 1);
    }

    #[test]
    fn unrecorded_queries_complete_without_counting() {
        let mut h = handler(1, Policy::Fifo, None);
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], false), &mut started);
        let done = h.on_task_complete(SimTime::from_millis(1), 0, LeaseToken(1), ms(1.0));
        let q = done.done.expect("aggregates regardless");
        assert!(!q.recorded);
        assert_eq!(h.stats().completed_queries, 0);
        assert!(h.stats().query_latency_by_class.is_empty());
        assert_eq!(h.stats().pre_dequeue.len(), 0);
    }

    #[test]
    fn admission_rejects_and_accounts_rejected_work() {
        let adm = AdmissionConfig::new(ms(100.0), 0.1).with_min_samples(1);
        let mut h = handler(1, Policy::TfEdf, Some(adm));
        let mut started = Vec::new();
        // Occupy the server, then queue a query with an already-expired
        // deadline: its dequeue at t=1ms is a detected miss.
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        h.on_query_arrival(
            SimTime::ZERO,
            QueryArrival {
                budget_override: Some(SimDuration::ZERO),
                ..arrival(&[0], true)
            },
            &mut started,
        );
        let next = h
            .on_task_complete(SimTime::from_millis(1), 0, LeaseToken(1), ms(1.0))
            .next;
        assert_eq!(
            next,
            Some(DispatchedTask {
                task: 1,
                server: 0,
                lease: LeaseToken(2)
            })
        );

        // Miss ratio 1/2 > 0.1 → the next arrival is rejected.
        let sizes = [ms(4.0)];
        let d = h.on_query_arrival(
            SimTime::from_millis(1),
            QueryArrival {
                sizes: Some(&sizes),
                ..arrival(&[0], true)
            },
            &mut started,
        );
        assert_eq!(d, AdmitDecision::Rejected);
        assert!(started.is_empty());
        assert_eq!(h.stats().rejected_queries, 1);
        assert_eq!(h.stats().load.queries_rejected_count(), 1);
        assert!(h.stats().load.rejected_load(SimTime::from_millis(100)) > 0.0);
        assert_eq!(h.query_count(), 2, "rejected query creates no state");
    }

    #[test]
    fn busy_and_estimator_accounting_per_server() {
        let mut h = handler(2, Policy::TfEdf, None);
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[1], true), &mut started);
        h.on_task_complete(SimTime::from_millis(5), 0, LeaseToken(1), ms(5.0));
        assert_eq!(h.stats().busy_by_server[0], SimDuration::ZERO);
        assert_eq!(h.stats().busy_by_server[1], ms(5.0));
        assert_eq!(h.stats().load.tasks_completed_count(), 1);
    }

    #[test]
    fn sjf_orders_queue_by_size_hint() {
        let mut h = handler(1, Policy::Sjf, None);
        let mut started = Vec::new();
        // Occupy the server, then queue a long and a short task.
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        let long = [ms(9.0)];
        let short = [ms(2.0)];
        h.on_query_arrival(
            SimTime::ZERO,
            QueryArrival {
                sizes: Some(&long),
                ..arrival(&[0], true)
            },
            &mut started,
        );
        h.on_query_arrival(
            SimTime::ZERO,
            QueryArrival {
                sizes: Some(&short),
                ..arrival(&[0], true)
            },
            &mut started,
        );
        let next = h
            .on_task_complete(SimTime::from_millis(1), 0, LeaseToken(1), ms(1.0))
            .next;
        assert_eq!(
            next,
            Some(DispatchedTask {
                task: 2,
                server: 0,
                lease: LeaseToken(2)
            }),
            "SJF must pick the short task first"
        );
    }

    #[test]
    fn hedge_copy_wins_and_original_is_cancelled() {
        let mut h = handler(2, Policy::TfEdf, None)
            .with_mitigation(MitigationConfig::new().with_hedge_after(0.5));
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        let due = h.hedge_deadline(0).expect("original has a hedge deadline");
        assert!(due > SimTime::ZERO);
        assert_eq!(
            h.hedge_target(due, 0),
            Some(1),
            "idle server 1 is the backup"
        );

        let (hedge, dispatched) = h.issue_duplicate(due, 0, 1, None, AttemptKind::Hedge);
        assert_eq!(
            dispatched,
            Some(DispatchedTask {
                task: 1,
                server: 1,
                lease: LeaseToken(2)
            })
        );
        assert_eq!(h.hedge_target(due, 0), None, "attempt cap reached");

        // The hedge returns first: it wins and completes the query.
        let win = h.on_task_complete(due + ms(1.0), hedge, LeaseToken(2), ms(1.0));
        let q = win.done.expect("hedge completion finishes the query");
        assert!(!q.partial);
        assert_eq!(h.stats().robustness.hedges_issued, 1);
        assert_eq!(h.stats().robustness.hedge_wins, 1);
        assert_eq!(h.stats().completed_queries, 1);

        // The straggling original is a loser: no double aggregation.
        let lose = h.on_task_complete(due + ms(5.0), 0, LeaseToken(1), ms(5.0));
        assert!(lose.done.is_none());
        assert_eq!(
            lose.commit,
            CommitOutcome::Committed,
            "a loser still commits"
        );
        assert_eq!(h.stats().robustness.cancelled_tasks, 1);
        assert_eq!(h.stats().completed_queries, 1);
    }

    #[test]
    fn partial_quorum_completes_early_and_separately() {
        let mut h = handler(3, Policy::TfEdf, None)
            .with_mitigation(MitigationConfig::new().with_partial_quorum(0.5));
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0, 1, 2], true), &mut started);
        // ceil(0.5 × 3) = 2 of 3 tasks suffice.
        assert!(h
            .on_task_complete(SimTime::from_millis(1), 0, LeaseToken(1), ms(1.0))
            .done
            .is_none());
        let q = h
            .on_task_complete(SimTime::from_millis(2), 1, LeaseToken(2), ms(2.0))
            .done
            .expect("quorum reached");
        assert!(q.partial);
        assert_eq!(q.latency, ms(2.0));
        assert_eq!(h.stats().robustness.partial_completions, 1);
        assert_eq!(h.stats().partial_latency.len(), 1);
        assert_eq!(
            h.stats().completed_queries,
            0,
            "partial is not a full SLO hit"
        );
        // The straggler resolves as a loser.
        assert!(h
            .on_task_complete(SimTime::from_millis(9), 2, LeaseToken(3), ms(9.0))
            .done
            .is_none());
        assert_eq!(h.stats().robustness.cancelled_tasks, 1);
    }

    #[test]
    fn lost_task_retries_on_backup_and_completes() {
        let mut h = handler(2, Policy::TfEdf, None).with_mitigation(MitigationConfig::new());
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        let lost = h.on_task_lost(SimTime::from_millis(1), 0, LeaseToken(1));
        assert_eq!(lost.retry, Some(RetryPlan { slot: 0, server: 1 }));
        assert!(lost.done.is_none());
        assert_eq!(h.stats().robustness.tasks_lost_to_faults, 1);

        let (retry, dispatched) =
            h.issue_duplicate(SimTime::from_millis(1), 0, 1, None, AttemptKind::Retry);
        let retry_lease = dispatched.expect("idle backup dispatches").lease;
        let q = h
            .on_task_complete(SimTime::from_millis(3), retry, retry_lease, ms(2.0))
            .done
            .expect("retry completes the query");
        assert!(!q.partial, "all slots have results");
        assert_eq!(q.latency, ms(3.0), "latency counts from arrival");
        assert_eq!(h.stats().robustness.retries, 1);
        assert_eq!(h.stats().completed_queries, 1);
    }

    #[test]
    fn lost_task_without_mitigation_fails_the_query() {
        let mut h = handler(2, Policy::TfEdf, None);
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        let lost = h.on_task_lost(SimTime::from_millis(1), 0, LeaseToken(1));
        assert_eq!(lost.retry, None, "no mitigation → no retry");
        let q = lost.done.expect("sole slot resolved as lost");
        assert!(q.partial);
        assert_eq!(h.stats().robustness.failed_queries, 1);
        assert_eq!(h.stats().robustness.tasks_lost_to_faults, 1);
        assert_eq!(h.stats().completed_queries, 0);
        assert_eq!(h.stats().partial_latency.len(), 0, "no result, no latency");
    }

    #[test]
    fn queued_loser_is_cancelled_at_dequeue() {
        let mut h = handler(2, Policy::TfEdf, None)
            .with_mitigation(MitigationConfig::new().with_hedge_after(0.1));
        let mut started = Vec::new();
        // Filler occupies server 1 so the hedge has to queue behind it.
        h.on_query_arrival(SimTime::ZERO, arrival(&[1], true), &mut started);
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        let (_, dispatched) =
            h.issue_duplicate(SimTime::from_millis(1), 1, 1, None, AttemptKind::Hedge);
        assert_eq!(dispatched, None, "server 1 busy: hedge queues");

        // The original wins; then server 1 frees and must discard the
        // queued hedge instead of starting it.
        h.on_task_complete(SimTime::from_millis(2), 1, LeaseToken(2), ms(2.0));
        let filler = h.on_task_complete(SimTime::from_millis(3), 0, LeaseToken(1), ms(3.0));
        assert_eq!(filler.next, None, "queued loser discarded, queue empty");
        assert_eq!(h.stats().robustness.cancelled_tasks, 1);
        assert_eq!(
            h.stats().load.tasks_completed_count(),
            2,
            "the cancelled hedge never counts as a dequeue"
        );
    }

    #[test]
    fn expired_lease_reclaims_and_fences_the_zombie() {
        let mut h = handler(1, Policy::TfEdf, None).with_lease(ms(2.0));
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        let d = started[0];
        assert_eq!(h.lease_expiry(d.task), Some(SimTime::ZERO + ms(2.0)));

        // Not yet expired: the check is a no-op.
        assert!(h
            .on_lease_expired(SimTime::from_millis(1), d.task, d.lease)
            .is_none());

        // Expired: the task is reclaimed and immediately re-dispatched on
        // the freed server under a new lease.
        let again = h
            .on_lease_expired(SimTime::from_millis(2), d.task, d.lease)
            .expect("reclaimed task re-dispatches");
        assert_eq!(again.task, d.task);
        assert!(again.lease > d.lease, "re-dispatch gets a newer token");
        assert_eq!(h.lifecycle().reclaims, 1);
        // A second check against the superseded token is fenced.
        assert!(h
            .on_lease_expired(SimTime::from_millis(3), d.task, d.lease)
            .is_none());
        assert_eq!(h.lifecycle().reclaims, 1);

        // The zombie incarnation's late result is fenced off...
        let stale = h.on_task_complete(SimTime::from_millis(3), d.task, d.lease, ms(3.0));
        assert_eq!(stale.commit, CommitOutcome::Stale);
        assert!(stale.done.is_none() && stale.next.is_none());
        assert_eq!(h.stats().completed_queries, 0);

        // ...and the live incarnation completes the query exactly once.
        let win = h.on_task_complete(SimTime::from_millis(4), d.task, again.lease, ms(2.0));
        assert_eq!(win.commit, CommitOutcome::Committed);
        assert!(win.done.is_some());
        let dup = h.on_task_complete(SimTime::from_millis(5), d.task, again.lease, ms(2.0));
        assert_eq!(dup.commit, CommitOutcome::Duplicate);
        assert_eq!(h.stats().completed_queries, 1, "no double counting");
        assert_eq!(h.lifecycle().stale_commits_rejected, 1);
        assert_eq!(h.lifecycle().duplicates_suppressed, 1);
    }

    #[test]
    fn stale_loss_report_is_fenced_too() {
        let mut h = handler(2, Policy::TfEdf, None)
            .with_mitigation(MitigationConfig::new())
            .with_lease(ms(2.0));
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        let d = started[0];
        let again = h
            .on_lease_expired(SimTime::from_millis(2), d.task, d.lease)
            .expect("reclaim re-dispatches");
        // A loss notification from the presumed-dead incarnation must not
        // trigger a retry or free the server a second time.
        let stale = h.on_task_lost(SimTime::from_millis(3), d.task, d.lease);
        assert_eq!(
            stale,
            LostTask {
                next: None,
                retry: None,
                done: None
            }
        );
        assert_eq!(h.stats().robustness.tasks_lost_to_faults, 0);

        let q = h
            .on_task_complete(SimTime::from_millis(4), d.task, again.lease, ms(2.0))
            .done
            .expect("live incarnation completes");
        assert!(!q.partial);
    }

    #[test]
    fn reclaim_of_a_resolved_slot_cancels_instead_of_reenqueueing() {
        let mut h = handler(2, Policy::TfEdf, None)
            .with_mitigation(MitigationConfig::new().with_hedge_after(0.1))
            .with_lease(ms(5.0));
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        let d = started[0];
        // A hedge on server 1 wins the slot while the original hangs.
        let (hedge, dispatched) =
            h.issue_duplicate(SimTime::from_millis(1), 0, 1, None, AttemptKind::Hedge);
        let hedge_lease = dispatched.expect("idle backup dispatches").lease;
        h.on_task_complete(SimTime::from_millis(2), hedge, hedge_lease, ms(1.0));
        assert_eq!(h.stats().completed_queries, 1);

        // The original's lease expires: nothing left to recover, so the
        // reclaim cancels it rather than re-enqueueing.
        let next = h.on_lease_expired(SimTime::from_millis(5), d.task, d.lease);
        assert!(next.is_none(), "no queued work on the freed server");
        assert_eq!(h.lifecycle().reclaims, 1);
        assert_eq!(h.stats().robustness.cancelled_tasks, 1);
        assert_eq!(h.task_in_service(0), None, "suspected server was freed");
    }

    /// A test sink sharing its event log through an `Arc` so the handler
    /// can own one clone while the test reads the other.
    #[derive(Debug, Default, Clone)]
    struct TestSink(std::sync::Arc<std::sync::Mutex<Vec<TraceEvent>>>);

    impl TraceSink for TestSink {
        fn record(&mut self, event: &TraceEvent) {
            self.0.lock().unwrap().push(*event);
        }
    }

    #[test]
    fn trace_stream_covers_the_basic_lifecycle() {
        let sink = TestSink::default();
        let mut h = handler(1, Policy::Fifo, None).with_trace_sink(Box::new(sink.clone()));
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        h.on_task_complete(SimTime::from_millis(3), 0, LeaseToken(1), ms(3.0));

        let events = sink.0.lock().unwrap();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind_name()).collect();
        assert_eq!(
            kinds,
            vec![
                "query_admitted",
                "task_enqueued",
                "task_dequeued", // idle server: immediate dequeue
                "query_admitted",
                "task_enqueued", // server busy: waits
                "task_completed",
                "task_dequeued", // work conservation after the completion
            ]
        );
        // The queued task's dequeue carries its wait and positive slack.
        match events[6] {
            TraceEvent::TaskDequeued {
                task,
                waited,
                slack_ns,
                ..
            } => {
                assert_eq!(task, 1);
                assert_eq!(waited, ms(3.0));
                assert!(slack_ns > 0, "dequeue within budget has positive slack");
            }
            ref other => panic!("expected TaskDequeued, got {other:?}"),
        }
    }

    #[test]
    fn trace_records_misses_hedges_and_cancellations() {
        let sink = TestSink::default();
        let mut h = handler(2, Policy::TfEdf, None)
            .with_mitigation(MitigationConfig::new().with_hedge_after(0.5))
            .with_trace_sink(Box::new(sink.clone()));
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        let due = h.hedge_deadline(0).unwrap();
        let (hedge, _) = h.issue_duplicate(due, 0, 1, None, AttemptKind::Hedge);
        h.on_task_complete(due + ms(1.0), hedge, LeaseToken(2), ms(1.0));
        h.on_task_complete(due + ms(5.0), 0, LeaseToken(1), ms(5.0));

        let events = sink.0.lock().unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::HedgeIssued { slot: 0, .. })));
        assert!(
            events.iter().any(|e| matches!(
                e,
                TraceEvent::TaskEnqueued {
                    kind: AttemptKind::Hedge,
                    ..
                }
            )),
            "the hedge copy gets its own enqueue event"
        );
        // The hedge wins; the original's completion is a loser.
        assert!(events.iter().any(
            |e| matches!(e, TraceEvent::TaskCompleted { task, won: true, .. } if *task == hedge)
        ));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::TaskCompleted {
                task: 0,
                won: false,
                ..
            }
        )));
    }

    #[test]
    fn trace_records_admission_edges() {
        let adm = AdmissionConfig::new(ms(100.0), 0.1).with_min_samples(1);
        let sink = TestSink::default();
        let mut h = handler(1, Policy::TfEdf, Some(adm)).with_trace_sink(Box::new(sink.clone()));
        let mut started = Vec::new();
        // Queue a doomed query behind a filler so its dequeue is a miss.
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        h.on_query_arrival(
            SimTime::ZERO,
            QueryArrival {
                budget_override: Some(SimDuration::ZERO),
                ..arrival(&[0], true)
            },
            &mut started,
        );
        h.on_task_complete(SimTime::from_millis(1), 0, LeaseToken(1), ms(1.0));
        // Miss ratio 1/2 > 0.1: this arrival flips admission to rejecting.
        h.on_query_arrival(SimTime::from_millis(1), arrival(&[0], true), &mut started);
        // After the window expires, admission resumes and admits again.
        h.on_query_arrival(SimTime::from_millis(500), arrival(&[0], true), &mut started);

        let events = sink.0.lock().unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::DeadlineMissed { task: 1, .. })));
        let pause = events
            .iter()
            .position(|e| matches!(e, TraceEvent::AdmissionPause { .. }))
            .expect("admission paused");
        let resume = events
            .iter()
            .position(|e| matches!(e, TraceEvent::AdmissionResume { .. }))
            .expect("admission resumed");
        assert!(pause < resume);
        assert!(events[pause..resume]
            .iter()
            .any(|e| matches!(e, TraceEvent::QueryRejected { .. })));
    }

    #[test]
    fn queue_depth_accessors_track_occupancy() {
        let mut h = handler(2, Policy::Fifo, None);
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        h.on_query_arrival(SimTime::ZERO, arrival(&[0, 1], true), &mut started);
        assert_eq!(h.queued_tasks(), 1, "one task waits behind server 0");
        assert_eq!(h.servers_busy(), 2);
        h.on_task_complete(SimTime::from_millis(1), 0, LeaseToken(1), ms(1.0));
        assert_eq!(h.queued_tasks(), 0);
    }

    #[test]
    fn hedge_budget_caps_outstanding_duplicates() {
        let mut h = handler(4, Policy::TfEdf, None).with_mitigation(
            MitigationConfig::new()
                .with_hedge_after(0.5)
                .with_max_attempts(4)
                .with_hedge_budget(1),
        );
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        h.on_query_arrival(SimTime::ZERO, arrival(&[1], true), &mut started);

        // The first hedge fits the bucket; the second is denied while it
        // is outstanding.
        let due = h.hedge_deadline(0).unwrap();
        let target = h.hedge_target(due, 0).expect("budget available");
        let (hedge, dispatched) = h.issue_duplicate(due, 0, target, None, AttemptKind::Hedge);
        let lease = dispatched.expect("idle backup dispatches").lease;
        assert_eq!(h.hedge_target(due, 1), None, "bucket exhausted");
        assert_eq!(h.stats().robustness.budget_exhausted, 1);

        // The hedge resolving returns its token; hedging works again.
        h.on_task_complete(due + ms(1.0), hedge, lease, ms(1.0));
        assert!(h.hedge_target(due, 1).is_some(), "token returned");
        assert_eq!(h.stats().robustness.budget_exhausted, 1);
    }

    #[test]
    fn hedge_budget_denies_retries_of_lost_tasks() {
        let mut h = handler(3, Policy::TfEdf, None)
            .with_mitigation(MitigationConfig::new().with_hedge_budget(1));
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        h.on_query_arrival(SimTime::ZERO, arrival(&[1], true), &mut started);

        // First loss retries (token taken); the second is denied and its
        // query fails outright.
        let first = h.on_task_lost(SimTime::from_millis(1), 0, LeaseToken(1));
        assert!(first.retry.is_some());
        let plan = first.retry.unwrap();
        h.issue_duplicate(
            SimTime::from_millis(1),
            plan.slot,
            plan.server,
            None,
            AttemptKind::Retry,
        );
        let second = h.on_task_lost(SimTime::from_millis(1), 1, LeaseToken(2));
        assert_eq!(second.retry, None, "bucket exhausted: no retry");
        assert!(second.done.is_some(), "slot resolves as lost instead");
        assert_eq!(h.stats().robustness.budget_exhausted, 1);
        assert_eq!(h.stats().robustness.failed_queries, 1);
    }

    #[test]
    fn ejected_server_diverts_arrivals_and_probes() {
        let cfg = HealthConfig::new()
            .with_min_observations(4)
            .with_eval_every(4)
            .with_probe_every(3);
        let mut h = handler(3, Policy::TfEdf, None).with_health(cfg);
        let mut started = Vec::new();

        // Teach the tracker that server 2 is a 10× outlier (draining
        // chained dispatches, since diverted tasks may queue).
        for round in 0..20u64 {
            let t = SimTime::from_millis(10 * round);
            h.on_query_arrival(t, arrival(&[0, 1, 2], false), &mut started);
            let mut pending = started.clone();
            while let Some(d) = pending.pop() {
                let busy = if d.server == 2 { ms(2.0) } else { ms(0.2) };
                let c = h.on_task_complete(t + busy, d.task, d.lease, busy);
                pending.extend(c.next);
            }
        }
        assert!(h.health().unwrap().is_ejected(2));

        // Tasks aimed at server 2 now divert to a healthy server, except
        // every 3rd, which probes. (The teaching loop already diverted
        // some post-ejection arrivals, so counters are compared as deltas.)
        let base = h.health().unwrap().stats().clone();
        let mut dispatched_servers = Vec::new();
        for i in 0..6u64 {
            let t = SimTime::from_millis(1000 + i);
            h.on_query_arrival(t, arrival(&[2], false), &mut started);
            let d = started[0];
            dispatched_servers.push(d.server);
            h.on_task_complete(t + ms(0.2), d.task, d.lease, ms(0.2));
        }
        assert!(
            dispatched_servers.iter().filter(|&&s| s != 2).count() == 4
                && dispatched_servers.iter().filter(|&&s| s == 2).count() == 2,
            "4 diverted, 2 probes, got {dispatched_servers:?}"
        );
        let hs = h.health().unwrap().stats();
        assert_eq!(hs.probes - base.probes, 2);
        assert_eq!(hs.rerouted_tasks - base.rerouted_tasks, 4);

        let stats = h.into_stats();
        assert_eq!(stats.health.ejections, 1);
        assert_eq!(stats.server_health.len(), 3);
        assert!(stats.server_health[2] > stats.server_health[0]);
    }

    #[test]
    fn backup_selection_skips_ejected_servers() {
        let cfg = HealthConfig::new()
            .with_min_observations(4)
            .with_eval_every(4);
        let mut h = handler(3, Policy::TfEdf, None)
            .with_health(cfg)
            .with_mitigation(MitigationConfig::new().with_hedge_after(0.5));
        let mut started = Vec::new();
        for round in 0..20u64 {
            let t = SimTime::from_millis(10 * round);
            h.on_query_arrival(t, arrival(&[0, 1, 2], false), &mut started);
            let mut pending = started.clone();
            while let Some(d) = pending.pop() {
                let busy = if d.server == 1 { ms(2.0) } else { ms(0.2) };
                let c = h.on_task_complete(t + busy, d.task, d.lease, busy);
                pending.extend(c.next);
            }
        }
        assert!(h.health().unwrap().is_ejected(1));

        // A hedge for a task on server 0 must pick server 2, never the
        // ejected server 1 (even though both are idle).
        h.on_query_arrival(
            SimTime::from_millis(1000),
            arrival(&[0], false),
            &mut started,
        );
        let slot = started[0].task;
        assert_eq!(h.hedge_target(SimTime::from_millis(1000), slot), Some(2));
    }

    #[test]
    fn trace_records_health_transitions_and_budget_denials() {
        // Ejection/readmission flips surface in the trace stream.
        let cfg = HealthConfig::new()
            .with_min_observations(4)
            .with_eval_every(4)
            .with_probe_every(3);
        let sink = TestSink::default();
        let mut h = handler(3, Policy::TfEdf, None)
            .with_health(cfg)
            .with_trace_sink(Box::new(sink.clone()));
        let mut started = Vec::new();
        for round in 0..20u64 {
            let t = SimTime::from_millis(10 * round);
            h.on_query_arrival(t, arrival(&[0, 1, 2], false), &mut started);
            let mut pending = started.clone();
            while let Some(d) = pending.pop() {
                let busy = if d.server == 2 { ms(2.0) } else { ms(0.2) };
                let c = h.on_task_complete(t + busy, d.task, d.lease, busy);
                pending.extend(c.next);
            }
        }
        assert!(h.health().unwrap().is_ejected(2));
        {
            let events = sink.0.lock().unwrap();
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::ServerEjected { server: 2, .. })),
                "ejection flip missing from the trace"
            );
        }
        // Fast probe completions heal the score until readmission, which
        // must surface in the trace as well.
        for i in 0..200u64 {
            let t = SimTime::from_millis(1000 + i);
            h.on_query_arrival(t, arrival(&[2], false), &mut started);
            let d = started[0];
            h.on_task_complete(t + ms(0.2), d.task, d.lease, ms(0.2));
            if !h.health().unwrap().is_ejected(2) {
                break;
            }
        }
        assert!(!h.health().unwrap().is_ejected(2), "server never healed");
        assert!(
            sink.0
                .lock()
                .unwrap()
                .iter()
                .any(|e| matches!(e, TraceEvent::ServerReadmitted { server: 2, .. })),
            "readmission flip missing from the trace"
        );

        // A hedge denied by the empty token bucket is narrated too.
        let sink = TestSink::default();
        let mut h = handler(4, Policy::TfEdf, None)
            .with_mitigation(
                MitigationConfig::new()
                    .with_hedge_after(0.5)
                    .with_max_attempts(4)
                    .with_hedge_budget(1),
            )
            .with_trace_sink(Box::new(sink.clone()));
        let mut started = Vec::new();
        h.on_query_arrival(SimTime::ZERO, arrival(&[0], true), &mut started);
        h.on_query_arrival(SimTime::ZERO, arrival(&[1], true), &mut started);
        let due = h.hedge_deadline(0).unwrap();
        let target = h.hedge_target(due, 0).expect("budget available");
        h.issue_duplicate(due, 0, target, None, AttemptKind::Hedge);
        assert_eq!(h.hedge_target(due, 1), None, "bucket exhausted");
        assert!(
            sink.0
                .lock()
                .unwrap()
                .iter()
                .any(|e| matches!(e, TraceEvent::HedgeBudgetExhausted { slot: 1, .. })),
            "budget denial missing from the trace"
        );
    }

    #[test]
    #[should_panic(expected = "query class 3 out of range")]
    fn class_out_of_range_panics() {
        let mut h = handler(1, Policy::Fifo, None);
        let mut started = Vec::new();
        h.on_query_arrival(
            SimTime::ZERO,
            QueryArrival {
                class: 3,
                ..arrival(&[0], true)
            },
            &mut started,
        );
    }

    #[test]
    #[should_panic(expected = "task budget count must equal fanout")]
    fn task_budget_mismatch_panics() {
        let mut h = handler(2, Policy::TfEdf, None);
        let mut started = Vec::new();
        let budgets = [ms(1.0)];
        h.on_query_arrival(
            SimTime::ZERO,
            QueryArrival {
                task_budgets: Some(&budgets),
                ..arrival(&[0, 1], true)
            },
            &mut started,
        );
    }
}

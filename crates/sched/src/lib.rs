//! The runtime-agnostic TailGuard scheduling core.
//!
//! This crate is the single implementation of the paper's query-handler
//! logic (ICDCS'23, Fig. 2): deadline computation from SLOs and fanout
//! (Eq. 6) via the [`DeadlineEstimator`], per-server task queues under a
//! [`tailguard_policy::Policy`], moving-window admission control with
//! hysteresis (§III.C), dequeue-time deadline-miss detection, fanout
//! aggregation, and per-class latency/load accounting.
//!
//! The [`QueryHandler`] state machine is pure event-driven code — every
//! method takes `now` explicitly; there is no clock, RNG, or I/O anywhere
//! in this crate. Two drivers share it:
//!
//! - the discrete-event **simulator** (`tailguard-core`) feeds it from an
//!   event heap with drawn placements and service times, and
//! - the tokio **testbed** (`tailguard-testbed`) feeds it from channel
//!   events under a real or paused clock, with live edge-node tasks.
//!
//! Keeping both behind one core means a fix or policy change lands in the
//! simulation and the system experiment at the same time, and differential
//! tests can hold the two runtimes to the same observable behavior.

mod admission;
mod config;
mod estimator;
mod handler;
mod health;
mod mitigation;
mod trace;
pub mod units;

pub use config::{AdmissionConfig, ClassSpec, ClusterSpec};
pub use estimator::{AdaptiveWindow, DeadlineEstimator, EstimatorMode};
pub use handler::{
    AdmitDecision, DispatchedTask, LostTask, QueryArrival, QueryDone, QueryHandler, QueryId,
    QueryTypeKey, RetryPlan, SchedStats, TaskCompletion, TaskId,
};
pub use health::{HealthConfig, HealthStats, HealthTracker};
pub use mitigation::{MitigationConfig, RobustnessStats};
// Lifecycle vocabulary re-exported for driver convenience (`AttemptKind`
// predates the lifecycle crate and keeps its original path here).
pub use tailguard_lifecycle::{AttemptKind, CommitOutcome, LeaseToken, LifecycleStats};
pub use trace::{NullSink, TraceEvent, TraceSink, VecSink};

//! Sanctioned numeric conversions for the deadline/lease/trace paths.
//!
//! The workspace-wide `lossy-cast` lint (`crates/lint`) forbids bare `as`
//! casts that can silently truncate in deterministic library code: a
//! narrowed nanosecond count or a float-truncated deadline corrupts the
//! Eq. 6 budget math without any visible failure. Every conversion that
//! *can* lose range goes through one of these helpers instead, so the
//! clamping policy is written down once, is greppable, and is tested at
//! the extremes (`u64::MAX`-adjacent timestamps, negative and non-finite
//! floats).
//!
//! Conventions:
//!
//! - **Saturating, not wrapping.** A clamped duration keeps orderings and
//!   deadlines sane; a wrapped one inverts them. Wrapping is never the
//!   right failure mode for time.
//! - **NaN maps to zero.** All float→time conversions treat NaN like a
//!   negative input: the earliest representable value, never a panic.
//! - **64-bit `usize` assumption.** The workspace targets 64-bit
//!   platforms (the testbed is aarch64, CI is x86-64); `usize`⇄`u64`
//!   conversions are lossless there and saturate defensively elsewhere.

/// Converts fractional milliseconds to integer nanoseconds, saturating.
///
/// Negative and NaN inputs clamp to `0`; values beyond `u64::MAX` ns
/// (≈ 584 years) clamp to `u64::MAX`. The result is rounded to the
/// nearest nanosecond, matching `SimDuration::from_millis_f64`.
#[inline]
#[must_use]
pub fn ms_f64_to_ns(ms: f64) -> u64 {
    sat_f64_to_u64(ms * 1e6)
}

/// Converts integer nanoseconds to fractional milliseconds.
///
/// Exact for durations up to 2^53 ns (≈ 104 days of virtual time); beyond
/// that the f64 mantissa rounds — acceptable for reporting, which is the
/// only consumer of the ms float domain.
#[inline]
#[must_use]
pub fn ns_to_ms_f64(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Rounds a float to `u64`, saturating at both ends.
///
/// NaN and negatives map to `0`; values at or above `u64::MAX` map to
/// `u64::MAX`. This is the only sanctioned float→integer truncation in
/// deterministic code: a bare `as u64` on a large virtual time silently
/// wraps the deadline to garbage.
#[inline]
#[must_use]
pub fn sat_f64_to_u64(v: f64) -> u64 {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        // tg-lint: allow(lossy-cast) -- guarded: 0 < v < 2^64, rounding cannot overflow
        v.round() as u64
    }
}

/// Scales a nanosecond count by a non-negative factor, saturating.
///
/// This is the Pi→wall lease/TTL compression used by the testbed: virtual
/// nanoseconds multiplied by a wall-time scale. The multiply happens in
/// f64 (mantissa-rounded above 2^53 ns, saturated at `u64::MAX`), so a
/// near-`u64::MAX` virtual time scales to a clamped — never wrapped —
/// wall time. Negative and NaN factors clamp to `0`.
#[inline]
#[must_use]
pub fn scale_ns(ns: u64, factor: f64) -> u64 {
    sat_f64_to_u64(ns as f64 * factor)
}

/// Truncates a float to `u64` with Rust's saturating `as` semantics.
///
/// Truncation toward zero (`1.9 → 1`), negatives and NaN to `0`, values
/// at or above 2^64 to `u64::MAX`. This is the conversion the golden
/// pins were produced with; use [`sat_f64_to_u64`] instead when
/// round-to-nearest is wanted. Having the policy behind a named helper
/// keeps bare `as` out of deterministic code without changing a single
/// pinned bit.
#[inline]
#[must_use]
pub fn trunc_f64_to_u64(v: f64) -> u64 {
    // tg-lint: allow(lossy-cast) -- this helper *is* the documented truncation policy
    v as u64
}

/// Truncates a float to `usize` with Rust's saturating `as` semantics
/// (truncate toward zero, NaN and negatives to `0`).
///
/// Used where a float rank or fraction selects a collection slot.
#[inline]
#[must_use]
pub fn trunc_f64_to_usize(v: f64) -> usize {
    // tg-lint: allow(lossy-cast) -- this helper *is* the documented truncation policy
    v as usize
}

/// Narrows `u64` to `u32`, saturating at `u32::MAX`.
#[inline]
#[must_use]
pub fn sat_u64_to_u32(v: u64) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// Narrows `u128` to `u64`, saturating at `u64::MAX`.
///
/// Used where `std::time::Duration::as_nanos()` (a `u128`) meets the
/// workspace's `u64` nanosecond domain: ≈ 584 years of wall time fit, and
/// anything longer clamps instead of wrapping.
#[inline]
#[must_use]
pub fn sat_u128_to_u64(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Narrows `usize` to `u32`, saturating at `u32::MAX`.
///
/// Server ids and fanout counts are `u32` on the wire; collection sizes
/// are `usize`. Clusters beyond 4 billion servers clamp.
#[inline]
#[must_use]
pub fn sat_usize_to_u32(v: usize) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// Widens `usize` to `u64` (lossless on the supported 64-bit targets).
#[inline]
#[must_use]
pub fn usize_to_u64(v: usize) -> u64 {
    v as u64
}

/// Converts `u64` to `usize`, saturating on (unsupported) 32-bit targets.
#[inline]
#[must_use]
pub fn u64_to_usize(v: u64) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Signed difference `a - b` of two nanosecond instants, saturating at
/// the `i64` range.
///
/// This is the dequeue-slack computation: positive when `a` (the
/// deadline) is still ahead of `b` (now), negative when the task is late.
/// Differences beyond ±2^63 ns clamp rather than wrap, so a corrupted or
/// extreme timestamp cannot flip the sign of the slack.
#[inline]
#[must_use]
pub fn signed_ns_delta(a: u64, b: u64) -> i64 {
    if a >= b {
        // tg-lint: allow(panic-surface) -- guarded: the branch establishes the minuend >= the subtrahend
        i64::try_from(a - b).unwrap_or(i64::MAX)
    } else {
        // tg-lint: allow(panic-surface) -- guarded: the branch establishes the minuend >= the subtrahend
        i64::try_from(b - a).map_or(i64::MIN, |d| -d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_to_ns_clamps_and_rounds() {
        assert_eq!(ms_f64_to_ns(1.5), 1_500_000);
        assert_eq!(ms_f64_to_ns(-3.0), 0);
        assert_eq!(ms_f64_to_ns(f64::NAN), 0);
        assert_eq!(ms_f64_to_ns(f64::INFINITY), u64::MAX);
        // 0.5 ns rounds to nearest, matching SimDuration::from_millis_f64.
        assert_eq!(ms_f64_to_ns(0.000_000_5), 1);
    }

    #[test]
    fn sat_f64_to_u64_near_max() {
        assert_eq!(sat_f64_to_u64(u64::MAX as f64), u64::MAX);
        assert_eq!(sat_f64_to_u64(u64::MAX as f64 * 2.0), u64::MAX);
        // The largest f64 strictly below 2^64 converts without clamping.
        let below = (u64::MAX as f64).next_down();
        assert!(sat_f64_to_u64(below) <= u64::MAX);
        assert_eq!(sat_f64_to_u64(0.4), 0);
        assert_eq!(sat_f64_to_u64(0.6), 1);
    }

    #[test]
    fn scale_ns_saturates_instead_of_wrapping() {
        assert_eq!(scale_ns(1_000_000, 25.0), 25_000_000);
        assert_eq!(scale_ns(u64::MAX, 2.0), u64::MAX);
        assert_eq!(scale_ns(u64::MAX - 1, 1.0), u64::MAX);
        assert_eq!(scale_ns(u64::MAX, 0.5), u64::MAX / 2 + 1);
        assert_eq!(scale_ns(100, 0.0), 0);
        assert_eq!(scale_ns(100, -1.0), 0);
        assert_eq!(scale_ns(100, f64::NAN), 0);
    }

    #[test]
    fn trunc_matches_rust_as_semantics() {
        assert_eq!(trunc_f64_to_u64(1.9), 1);
        assert_eq!(trunc_f64_to_u64(-3.0), 0);
        assert_eq!(trunc_f64_to_u64(f64::NAN), 0);
        assert_eq!(trunc_f64_to_u64(f64::INFINITY), u64::MAX);
        assert_eq!(trunc_f64_to_usize(2.999), 2);
        assert_eq!(trunc_f64_to_usize(-1.0), 0);
    }

    #[test]
    fn integer_narrowing_saturates() {
        assert_eq!(sat_u64_to_u32(7), 7);
        assert_eq!(sat_u64_to_u32(u64::MAX), u32::MAX);
        assert_eq!(sat_u128_to_u64(u128::from(u64::MAX) + 1), u64::MAX);
        assert_eq!(sat_u128_to_u64(42), 42);
        assert_eq!(sat_usize_to_u32(usize::MAX), u32::MAX);
        assert_eq!(usize_to_u64(3), 3);
        assert_eq!(u64_to_usize(u64::MAX), usize::MAX);
    }

    #[test]
    fn signed_delta_covers_the_extremes() {
        assert_eq!(signed_ns_delta(10, 3), 7);
        assert_eq!(signed_ns_delta(3, 10), -7);
        assert_eq!(signed_ns_delta(u64::MAX, 0), i64::MAX);
        assert_eq!(signed_ns_delta(0, u64::MAX), i64::MIN);
        let mid = u64::try_from(i64::MAX).expect("i64::MAX fits u64");
        assert_eq!(signed_ns_delta(mid, 0), i64::MAX);
        assert_eq!(signed_ns_delta(mid + 1, 0), i64::MAX);
    }
}

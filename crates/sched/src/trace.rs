//! The flight-recorder event taxonomy and sink trait.
//!
//! The [`QueryHandler`](crate::QueryHandler) narrates every query and task
//! lifecycle transition as a [`TraceEvent`] into a [`TraceSink`]. The
//! default sink is [`NullSink`]: a zero-sized type whose `enabled()` is
//! `false`, so the handler skips event construction entirely — disabled
//! tracing adds one predictable branch per emission point, no allocations,
//! and leaves the golden pins bit-for-bit identical.
//!
//! Events carry handler-local ids ([`QueryId`]/[`TaskId`]) and virtual
//! timestamps; both runtimes emit the same stream for the same input, which
//! is what makes recorder contents comparable across `--jobs` levels and
//! across the simulator/testbed pair. Recording sinks (ring buffers,
//! registries, exporters) live in `tailguard-obs`; this module only defines
//! the contract so the scheduling core stays dependency-free.

use crate::handler::{QueryId, TaskId};
use crate::AttemptKind;
use tailguard_lifecycle::LeaseToken;
use tailguard_simcore::{SimDuration, SimTime};

/// One scheduling-lifecycle event, emitted at the instant it happens.
///
/// All variants are `Copy` and carry no heap data: a sink that drops the
/// event costs nothing beyond the enum construction, and a ring buffer can
/// store events inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A query passed admission; its tasks are about to be enqueued with
    /// the shared queuing deadline `t_D = t_0 + T_b` (Eq. 6).
    QueryAdmitted {
        /// Event time (`t_0`).
        at: SimTime,
        /// The admitted query.
        query: QueryId,
        /// Its service class.
        class: u8,
        /// Its fanout `k_f`.
        fanout: u32,
        /// The stamped queuing deadline `t_D`.
        deadline: SimTime,
    },
    /// A query was turned away by §III.C admission control.
    QueryRejected {
        /// Event time.
        at: SimTime,
        /// The rejected query's class.
        class: u8,
        /// Its fanout.
        fanout: u32,
    },
    /// A task attempt entered a server's queue (or went straight into
    /// service — a [`TraceEvent::TaskDequeued`] at the same instant
    /// follows).
    TaskEnqueued {
        /// Event time.
        at: SimTime,
        /// The attempt's task id.
        task: TaskId,
        /// The logical task (slot) this attempt serves — distinguishes
        /// hedge/retry copies of one fanout task in exported timelines.
        slot: TaskId,
        /// The owning query.
        query: QueryId,
        /// The query's class.
        class: u8,
        /// The target server.
        server: u32,
        /// Original, hedge, or retry.
        kind: AttemptKind,
        /// The attempt's queuing deadline.
        deadline: SimTime,
    },
    /// A task attempt left its queue and entered service under a fresh
    /// lease.
    TaskDequeued {
        /// Event time.
        at: SimTime,
        /// The attempt's task id.
        task: TaskId,
        /// The logical task (slot) this attempt serves.
        slot: TaskId,
        /// The owning query.
        query: QueryId,
        /// The query's class.
        class: u8,
        /// Original, hedge, or retry.
        kind: AttemptKind,
        /// The serving server.
        server: u32,
        /// The fencing token of the lease this dispatch runs under.
        token: LeaseToken,
        /// Queue wait (enqueue → dequeue).
        waited: SimDuration,
        /// Deadline slack at dequeue in nanoseconds: `t_D − now`, negative
        /// when the dequeue itself is the miss.
        slack_ns: i64,
    },
    /// A task missed its queuing deadline — detected at dequeue, exactly
    /// where the admission window counts it.
    DeadlineMissed {
        /// Event time (the dequeue instant).
        at: SimTime,
        /// The late attempt.
        task: TaskId,
        /// The owning query.
        query: QueryId,
        /// The serving server.
        server: u32,
        /// How far past `t_D` the dequeue happened.
        late_by: SimDuration,
    },
    /// A hedge copy was issued because the slot's remaining budget crossed
    /// the [`MitigationConfig::hedge_after`](crate::MitigationConfig)
    /// threshold. The copy's own [`TraceEvent::TaskEnqueued`] follows.
    HedgeIssued {
        /// Event time.
        at: SimTime,
        /// The hedge copy's task id.
        task: TaskId,
        /// The logical task (slot) being hedged.
        slot: TaskId,
        /// The owning query.
        query: QueryId,
        /// The backup server chosen.
        server: u32,
    },
    /// A queued attempt was discarded at dequeue because its slot had
    /// already resolved (hedge loser, or straggler of an early-quorum
    /// query). It never entered service.
    TaskCancelled {
        /// Event time.
        at: SimTime,
        /// The discarded attempt.
        task: TaskId,
        /// The logical task (slot) the attempt served.
        slot: TaskId,
        /// The owning query.
        query: QueryId,
        /// The server whose queue it was discarded from.
        server: u32,
    },
    /// A task attempt finished service. `won` is false for losers whose
    /// slot another attempt already resolved (their result is ignored but
    /// the server's busy time stands).
    TaskCompleted {
        /// Event time.
        at: SimTime,
        /// The completed attempt.
        task: TaskId,
        /// The logical task (slot) the attempt served.
        slot: TaskId,
        /// The owning query.
        query: QueryId,
        /// The server that served it.
        server: u32,
        /// Service time actually spent.
        busy: SimDuration,
        /// Whether this completion resolved its slot.
        won: bool,
    },
    /// A task attempt in service was lost to an injected fault or worker
    /// failure (no result, no busy time learned).
    TaskLost {
        /// Event time.
        at: SimTime,
        /// The lost attempt.
        task: TaskId,
        /// The logical task (slot) the attempt served.
        slot: TaskId,
        /// The owning query.
        query: QueryId,
        /// The server it was in service at.
        server: u32,
    },
    /// An expired lease was reclaimed: the attempt's incarnation under
    /// `token` is presumed dead, the task returns to `Queued` with its
    /// *original* deadline `t_D`, and the suspected server is freed. Any
    /// later result under `token` is fenced off as stale.
    LeaseReclaimed {
        /// Event time (the reclaim check that found the lease expired).
        at: SimTime,
        /// The reclaimed attempt.
        task: TaskId,
        /// The owning query.
        query: QueryId,
        /// The server whose lease expired.
        server: u32,
        /// The token of the expired (now fenced) lease incarnation.
        token: LeaseToken,
    },
    /// A redelivered result for an already-terminal attempt was suppressed
    /// idempotently (at-least-once delivery tolerance).
    DuplicateSuppressed {
        /// Event time.
        at: SimTime,
        /// The attempt whose result arrived again.
        task: TaskId,
        /// The owning query.
        query: QueryId,
        /// The server that (re)delivered it.
        server: u32,
    },
    /// A result carrying a stale lease token was rejected by fencing — a
    /// zombie incarnation reported after its lease was reclaimed.
    StaleCommitRejected {
        /// Event time.
        at: SimTime,
        /// The attempt the stale result targeted.
        task: TaskId,
        /// The owning query.
        query: QueryId,
        /// The server that delivered the stale result.
        server: u32,
        /// The stale token the result carried.
        token: LeaseToken,
    },
    /// Admission flipped from admitting to rejecting (the window's miss
    /// ratio crossed the threshold).
    AdmissionPause {
        /// Event time.
        at: SimTime,
    },
    /// Admission flipped back to admitting (hysteresis recovery or window
    /// drain).
    AdmissionResume {
        /// Event time.
        at: SimTime,
    },
    /// The health tracker ejected a server: its EWMA score crossed the
    /// eject threshold and dispatch diverts around it (recovery probes
    /// excepted).
    ServerEjected {
        /// Event time (the evaluation that flipped the state).
        at: SimTime,
        /// The ejected server.
        server: u32,
    },
    /// The health tracker readmitted an ejected server after its score
    /// recovered below the readmit threshold.
    ServerReadmitted {
        /// Event time (the evaluation that flipped the state).
        at: SimTime,
        /// The readmitted server.
        server: u32,
    },
    /// A hedge or retry was denied because the class's token bucket of
    /// outstanding duplicates was empty
    /// ([`MitigationConfig::hedge_budget`](crate::MitigationConfig)).
    HedgeBudgetExhausted {
        /// Event time.
        at: SimTime,
        /// The logical task (slot) the denied copy would have served.
        slot: TaskId,
        /// The owning query.
        query: QueryId,
        /// The query's class (whose bucket was empty).
        class: u8,
    },
}

impl TraceEvent {
    /// The instant the event happened.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::QueryAdmitted { at, .. }
            | TraceEvent::QueryRejected { at, .. }
            | TraceEvent::TaskEnqueued { at, .. }
            | TraceEvent::TaskDequeued { at, .. }
            | TraceEvent::DeadlineMissed { at, .. }
            | TraceEvent::HedgeIssued { at, .. }
            | TraceEvent::TaskCancelled { at, .. }
            | TraceEvent::TaskCompleted { at, .. }
            | TraceEvent::TaskLost { at, .. }
            | TraceEvent::LeaseReclaimed { at, .. }
            | TraceEvent::DuplicateSuppressed { at, .. }
            | TraceEvent::StaleCommitRejected { at, .. }
            | TraceEvent::AdmissionPause { at }
            | TraceEvent::AdmissionResume { at }
            | TraceEvent::ServerEjected { at, .. }
            | TraceEvent::ServerReadmitted { at, .. }
            | TraceEvent::HedgeBudgetExhausted { at, .. } => at,
        }
    }

    /// The owning query, for query-scoped events.
    pub fn query(&self) -> Option<QueryId> {
        match *self {
            TraceEvent::QueryAdmitted { query, .. }
            | TraceEvent::TaskEnqueued { query, .. }
            | TraceEvent::TaskDequeued { query, .. }
            | TraceEvent::DeadlineMissed { query, .. }
            | TraceEvent::HedgeIssued { query, .. }
            | TraceEvent::TaskCancelled { query, .. }
            | TraceEvent::TaskCompleted { query, .. }
            | TraceEvent::TaskLost { query, .. }
            | TraceEvent::LeaseReclaimed { query, .. }
            | TraceEvent::DuplicateSuppressed { query, .. }
            | TraceEvent::StaleCommitRejected { query, .. }
            | TraceEvent::HedgeBudgetExhausted { query, .. } => Some(query),
            TraceEvent::QueryRejected { .. }
            | TraceEvent::AdmissionPause { .. }
            | TraceEvent::AdmissionResume { .. }
            | TraceEvent::ServerEjected { .. }
            | TraceEvent::ServerReadmitted { .. } => None,
        }
    }

    /// The event's short kind name (stable; used by exporters).
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::QueryAdmitted { .. } => "query_admitted",
            TraceEvent::QueryRejected { .. } => "query_rejected",
            TraceEvent::TaskEnqueued { .. } => "task_enqueued",
            TraceEvent::TaskDequeued { .. } => "task_dequeued",
            TraceEvent::DeadlineMissed { .. } => "deadline_missed",
            TraceEvent::HedgeIssued { .. } => "hedge_issued",
            TraceEvent::TaskCancelled { .. } => "task_cancelled",
            TraceEvent::TaskCompleted { .. } => "task_completed",
            TraceEvent::TaskLost { .. } => "task_lost",
            TraceEvent::LeaseReclaimed { .. } => "lease_reclaimed",
            TraceEvent::DuplicateSuppressed { .. } => "duplicate_suppressed",
            TraceEvent::StaleCommitRejected { .. } => "stale_commit_rejected",
            TraceEvent::AdmissionPause { .. } => "admission_pause",
            TraceEvent::AdmissionResume { .. } => "admission_resume",
            TraceEvent::ServerEjected { .. } => "server_ejected",
            TraceEvent::ServerReadmitted { .. } => "server_readmitted",
            TraceEvent::HedgeBudgetExhausted { .. } => "hedge_budget_exhausted",
        }
    }
}

/// Where lifecycle events go.
///
/// Sinks receive events strictly in emission order (which, at equal
/// timestamps, is the handler's deterministic processing order). A sink
/// must not call back into the handler. Sinks are `Send` so a traced
/// handler can still move across the parallel runner's worker threads.
pub trait TraceSink: Send {
    /// Records one event.
    fn record(&mut self, event: &TraceEvent);

    /// Whether the handler should construct and deliver events at all.
    /// The handler caches this once at installation; returning `false`
    /// (as [`NullSink`] does) makes every emission point a dead branch.
    fn enabled(&self) -> bool {
        true
    }

    /// How many events the emitter may stage before delivering them in
    /// one [`TraceSink::record_batch`] call.
    ///
    /// The default (1) means per-event delivery through
    /// [`TraceSink::record`], which every sink supports and which test
    /// sinks rely on for immediate visibility. A sink that ingests in
    /// bulk (the binary recorder encodes a whole batch per virtual call)
    /// returns its preferred batch size; the handler then stages events
    /// in a plain `Vec` and pays one virtual dispatch per batch instead
    /// of one per event. (On the simulator hot path the dispatch saving
    /// roughly cancels against the staging copy — see `BENCH_obs.json` —
    /// but the batch call also hands the sink a natural flush boundary.)
    /// Delivery is deferred by at most one batch: the stage flushes when
    /// full and when the handler finishes.
    fn batch_hint(&self) -> usize {
        1
    }

    /// Delivers a staged run of events, in emission order.
    ///
    /// The default forwards them one by one to [`TraceSink::record`], so
    /// a batch-unaware sink observes the exact per-event stream — just
    /// grouped. Only called when [`TraceSink::batch_hint`] returns more
    /// than 1.
    fn record_batch(&mut self, events: &[TraceEvent]) {
        for ev in events {
            self.record(ev);
        }
    }
}

/// The default sink: discards everything, reports itself disabled.
///
/// A boxed `NullSink` does not allocate (it is zero-sized), and because
/// `enabled()` is `false` the handler never even builds the events — the
/// traced and untraced hot paths are identical apart from one branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A sink that appends every event to a `Vec` — the simplest recording
/// sink, used by unit tests; bounded recording lives in `tailguard-obs`.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_zero_sized() {
        assert!(!NullSink.enabled());
        assert_eq!(std::mem::size_of::<NullSink>(), 0);
    }

    #[test]
    fn event_accessors() {
        let ev = TraceEvent::TaskDequeued {
            at: SimTime::from_millis(3),
            task: 7,
            slot: 7,
            query: 2,
            class: 0,
            kind: AttemptKind::Original,
            server: 1,
            token: LeaseToken(4),
            waited: SimDuration::from_millis(1),
            slack_ns: -50,
        };
        assert_eq!(ev.at(), SimTime::from_millis(3));
        assert_eq!(ev.query(), Some(2));
        assert_eq!(ev.kind_name(), "task_dequeued");
        let pause = TraceEvent::AdmissionPause { at: SimTime::ZERO };
        assert_eq!(pause.query(), None);
        let reclaim = TraceEvent::LeaseReclaimed {
            at: SimTime::from_millis(9),
            task: 7,
            query: 2,
            server: 1,
            token: LeaseToken(4),
        };
        assert_eq!(reclaim.query(), Some(2));
        assert_eq!(reclaim.kind_name(), "lease_reclaimed");
        let ejected = TraceEvent::ServerEjected {
            at: SimTime::from_millis(5),
            server: 3,
        };
        assert_eq!(ejected.query(), None);
        assert_eq!(ejected.kind_name(), "server_ejected");
        let denied = TraceEvent::HedgeBudgetExhausted {
            at: SimTime::from_millis(6),
            slot: 7,
            query: 2,
            class: 1,
        };
        assert_eq!(denied.query(), Some(2));
        assert_eq!(denied.kind_name(), "hedge_budget_exhausted");
    }
}

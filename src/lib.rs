//! Workspace umbrella crate for the TailGuard reproduction.
//!
//! Re-exports the member crates so that integration tests under `tests/` and
//! the runnable examples under `examples/` can reach every public API through
//! a single dependency.

pub use tailguard;
pub use tailguard_dist as dist;
pub use tailguard_faults as faults;
pub use tailguard_metrics as metrics;
pub use tailguard_obs as obs;
pub use tailguard_policy as policy;
pub use tailguard_sched as sched;
pub use tailguard_simcore as simcore;
pub use tailguard_testbed as testbed;
pub use tailguard_workload as workload;

#![allow(clippy::all)]
//! The `#[tokio::test]` attribute for the offline tokio stub.
//!
//! Rewrites `async fn name() { body }` into a synchronous `#[test]` that
//! builds a current-thread runtime and `block_on`s the body, pausing the
//! virtual clock first when `start_paused = true` is given.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_attribute]
pub fn tokio_test(attr: TokenStream, item: TokenStream) -> TokenStream {
    let attr_text = attr.to_string();
    let start_paused = attr_text.contains("start_paused") && attr_text.contains("true");

    let tokens: Vec<TokenTree> = item.into_iter().collect();

    // Split: [attributes...] [qualifiers... `fn` name ...] { body }
    let fn_idx = tokens
        .iter()
        .position(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "fn"))
        .expect("tokio stub: #[tokio::test] requires a function item");
    let name = match tokens.get(fn_idx + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("tokio stub: expected function name, got {other:?}"),
    };
    let body = match tokens.last() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.to_string(),
        other => panic!("tokio stub: expected function body, got {other:?}"),
    };

    // Preserve any attributes written above the function (e.g. #[ignore]).
    let mut attrs = String::new();
    let mut i = 0;
    while i < fn_idx {
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == '#' {
                attrs.push_str(&tokens[i].to_string());
                if let Some(group) = tokens.get(i + 1) {
                    attrs.push_str(&group.to_string());
                    attrs.push('\n');
                }
                i += 2;
                continue;
            }
        }
        // `async`, visibility, etc. — dropped; the wrapper is sync and
        // test functions are never public.
        i += 1;
    }

    let pause = if start_paused {
        "::tokio::time::pause();"
    } else {
        ""
    };
    let out = format!(
        "{attrs}#[test]\n\
         fn {name}() {{\n\
             let mut builder = ::tokio::runtime::Builder::new_current_thread();\n\
             let rt = builder.enable_time().build().expect(\"tokio stub runtime\");\n\
             rt.block_on(async move {{ {pause} async move {body}.await }});\n\
         }}"
    );
    out.parse().expect("tokio stub: generated test must parse")
}

#![allow(clippy::all)]
//! Offline stand-in for `criterion`.
//!
//! A small fixed-iteration wall-clock harness exposing the API slice the
//! workspace's micro-benchmarks use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`/`finish`),
//! [`Bencher::iter`]/[`Bencher::iter_batched`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Results (mean per
//! iteration over the measured samples) print to stdout; there is no
//! statistical analysis, HTML report, or CLI filtering.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API parity, the stub treats
/// every size identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One routine call per setup output.
    SmallInput,
    /// Larger batches (treated as `SmallInput`).
    LargeInput,
    /// Per-iteration setup (treated as `SmallInput`).
    PerIteration,
}

/// Drives the measured routine.
pub struct Bencher<'a> {
    samples: usize,
    /// Mean measured time per iteration, reported back to the harness.
    result: &'a mut Option<Duration>,
}

impl Bencher<'_> {
    /// Measures `routine` repeatedly and records the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass keeps cold-start effects out of the measurement.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        *self.result = Some(start.elapsed() / self.samples as u32);
    }

    /// Measures `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        *self.result = Some(total / self.samples as u32);
    }
}

fn run_bench(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut result = None;
    let mut bencher = Bencher {
        samples,
        result: &mut result,
    };
    f(&mut bencher);
    match result {
        Some(mean) => println!("bench {label:<40} {mean:>12.2?}/iter ({samples} iters)"),
        None => println!("bench {label:<40} (no measurement)"),
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.samples, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.samples, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Post-run hook (no-op; kept for API parity).
    pub fn final_summary(&mut self) {}
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#![allow(clippy::all)]
//! Derive macros for the offline `serde` stub.
//!
//! `syn`/`quote` are unavailable without a crates.io mirror, so parsing is a
//! small hand-rolled token scan and code generation is string assembly fed
//! back through `TokenStream::parse`. Supported shapes — the only ones used
//! in this workspace:
//!
//! * structs with named fields,
//! * tuple structs (any arity; arity 1 serializes transparently),
//! * unit structs,
//! * enums whose variants are unit, newtype, or carry named fields
//!   (externally tagged, as in real serde).
//!
//! Generics, `where` clauses, and `#[serde(...)]` attributes are rejected
//! with a compile-time panic rather than silently mishandled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input turned out to be.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(vec![])`-incompatible shapes are
    /// rejected during parsing; newtype variants use `fields: None` with
    /// `newtype: true`.
    fields: Option<Vec<String>>,
    newtype: bool,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// --- parsing -------------------------------------------------------------

fn parse_item(input: TokenStream) -> Shape {
    let mut toks = input.into_iter().peekable();
    loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute or doc comment: skip the bracket group.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility; swallow a `(crate)`-style qualifier if present.
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return parse_struct(&mut toks);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return parse_enum(&mut toks);
            }
            Some(other) => {
                panic!("serde stub derive: unexpected token `{other}` before item keyword")
            }
            None => panic!("serde stub derive: empty input"),
        }
    }
}

fn parse_struct(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Shape {
    let name = expect_ident(toks, "struct name");
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
            name,
            fields: parse_named_fields(g.stream()),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde stub derive: generic type `{name}` is not supported")
        }
        other => panic!("serde stub derive: unexpected token after struct name: {other:?}"),
    }
}

fn parse_enum(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Shape {
    let name = expect_ident(toks, "enum name");
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde stub derive: generic type `{name}` is not supported")
        }
        other => panic!("serde stub derive: expected enum body, got {other:?}"),
    };
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        match toks.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Ident(id)) => {
                let vname = id.to_string();
                match toks.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        toks.next();
                        variants.push(Variant {
                            name: vname,
                            fields: Some(fields),
                            newtype: false,
                        });
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = count_tuple_fields(g.stream());
                        assert!(
                            arity == 1,
                            "serde stub derive: tuple variant `{vname}` with {arity} fields unsupported"
                        );
                        toks.next();
                        variants.push(Variant {
                            name: vname,
                            fields: None,
                            newtype: true,
                        });
                    }
                    _ => variants.push(Variant {
                        name: vname,
                        fields: None,
                        newtype: false,
                    }),
                }
            }
            Some(other) => panic!("serde stub derive: unexpected token in enum body: {other}"),
        }
    }
    Shape::Enum { name, variants }
}

/// Field names from a `{ ... }` struct/variant body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Leading attributes / visibility before the field name.
        let name = loop {
            match toks.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        toks.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    panic!("serde stub derive: unexpected token in field list: {other}")
                }
            }
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    toks.next();
                    break;
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
        fields.push(name);
    }
}

/// Number of fields in a tuple-struct/variant `( ... )` body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    let mut any = false;
    for tt in body {
        any = true;
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn expect_ident(
    toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    what: &str,
) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected {what}, got {other:?}"),
    }
}

// --- codegen -------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_node(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_node(&self) -> ::serde::Node {{\n\
                         ::serde::Node::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_node(&self) -> ::serde::Node {{ ::serde::Serialize::to_node(&self.0) }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_node(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_node(&self) -> ::serde::Node {{ ::serde::Node::Seq(::std::vec![{items}]) }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_node(&self) -> ::serde::Node {{ ::serde::Node::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match (&v.fields, v.newtype) {
                        (None, false) => format!(
                            "{name}::{vname} => ::serde::Node::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        (None, true) => format!(
                            "{name}::{vname}(inner) => ::serde::Node::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Serialize::to_node(inner))]),"
                        ),
                        (Some(fields), _) => {
                            let binds = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_node({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Node::Map(::std::vec![(\
                                     ::std::string::String::from(\"{vname}\"), \
                                     ::serde::Node::Map(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_node(&self) -> ::serde::Node {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_node(::serde::field(node, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_node(node: &::serde::Node) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_node(node: &::serde::Node) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_node(node)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_node(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_node(node: &::serde::Node) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match node {{\n\
                             ::serde::Node::Seq(items) if items.len() == {arity} => \
                                 ::std::result::Result::Ok({name}({items})),\n\
                             other => ::std::result::Result::Err(::serde::DeError::expected(\"{arity}-element array\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_node(_node: &::serde::Node) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none() && !v.newtype)
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_some() || v.newtype)
                .map(|v| {
                    let vname = &v.name;
                    if v.newtype {
                        format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_node(inner)?)),"
                        )
                    } else {
                        let inits: String = v
                            .fields
                            .as_ref()
                            .unwrap()
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_node(::serde::field(inner, \"{f}\")?)?,"
                                )
                            })
                            .collect();
                        format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_node(node: &::serde::Node) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match node {{\n\
                             ::serde::Node::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Node::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError(\
                                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::DeError::expected(\"{name} variant\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

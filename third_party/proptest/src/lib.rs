#![allow(clippy::all)]
//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest this workspace uses: the [`proptest!`]
//! macro over functions with `arg in strategy` parameters, range strategies
//! for the primitive numeric types, [`collection::vec`], [`option::of`],
//! [`prop_assert!`]/[`prop_assert_eq!`], and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, deliberate for an offline test
//! dependency: inputs are derived deterministically from the case index (no
//! time/OS entropy), and failing cases are reported but not shrunk.

pub mod test_runner {
    //! Test-case outcome types and the deterministic case RNG.

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// A failed or rejected property case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The case was rejected (kept for API parity; unused here).
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-case result type (`?`-compatible inside `proptest!` bodies).
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic generator backing one test case.
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of the case index.
        pub fn for_case(case: u32) -> TestRng {
            // Golden-ratio spacing keeps neighbouring cases' streams apart.
            TestRng {
                inner: SmallRng::seed_from_u64(
                    0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1),
                ),
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            self.inner.random::<f64>()
        }

        /// Uniform draw in `[lo, hi)`.
        pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
            self.inner.random_range(lo..hi)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and primitive-range implementations.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty proptest range");
                    let lo = self.start as u64;
                    let hi = self.end as u64;
                    rng.u64_range(lo, hi) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty proptest range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    let off = rng.u64_range(0, span);
                    ((self.start as i64) + off as i64) as $t
                }
            }
        )*};
    }

    impl_signed_range!(i8, i16, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty proptest range");
            self.start + rng.f64() * (self.end - self.start)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy: elements from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.u64_range(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`: `Some` with probability one half.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner` values in `Some` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.f64() < 0.5 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

pub mod prelude {
    //! The glob-import surface.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests: each function runs its body against `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = ($cfg).cases;
                for case in 0..cases {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )+
                    let result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        ::std::panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(::std::concat!(
                    "assertion failed: ",
                    ::std::stringify!($cond)
                )),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
}

#![allow(clippy::all)]
//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! minimal serialization machinery the workspace needs. Instead of serde's
//! visitor architecture, values convert to and from a small JSON-like tree
//! ([`Node`]); `serde_json` (the sibling stub) renders and parses that tree.
//!
//! The derive macros (re-exported from `serde_derive`) support the shapes
//! used in this repository: structs with named fields, tuple structs, and
//! enums whose variants are units or carry named fields. Field attributes
//! (`#[serde(...)]`) are intentionally unsupported — none are used here.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree — the interchange format between [`Serialize`],
/// [`Deserialize`], and the `serde_json` stub.
///
/// Integers keep full 64-bit precision (`U64`/`I64`) rather than flowing
/// through `f64`, so nanosecond timestamps round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Node>),
    /// Objects, in insertion order.
    Map(Vec<(String, Node)>),
}

impl Node {
    /// Looks up `key` in a [`Node::Map`].
    pub fn get(&self, key: &str) -> Option<&Node> {
        match self {
            Node::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Node::U64(v) => Some(v as f64),
            Node::I64(v) => Some(v as f64),
            Node::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Node::U64(v) => Some(v),
            Node::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Node::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Node::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Node::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Node::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_array(&self) -> Option<&Vec<Node>> {
        match self {
            Node::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// True when the node is a boolean.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Node::Bool(_))
    }

    /// True when the node is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Node::Null)
    }

    /// True when the node is any number.
    pub fn is_number(&self) -> bool {
        matches!(self, Node::U64(_) | Node::I64(_) | Node::F64(_))
    }

    /// True when the node is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Node::Str(_))
    }

    /// True when the node is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Node::Seq(_))
    }

    /// True when the node is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Node::Map(_))
    }

    /// A one-word description of the node's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Node::Null => "null",
            Node::Bool(_) => "bool",
            Node::U64(_) | Node::I64(_) => "integer",
            Node::F64(_) => "number",
            Node::Str(_) => "string",
            Node::Seq(_) => "array",
            Node::Map(_) => "object",
        }
    }
}

/// Shared sentinel for out-of-range [`Node`] indexing, mirroring
/// `serde_json::Value`'s panic-free index semantics.
static NULL_NODE: Node = Node::Null;

impl core::ops::Index<&str> for Node {
    type Output = Node;

    /// Object lookup; missing keys and non-objects yield `Null`.
    fn index(&self, key: &str) -> &Node {
        self.get(key).unwrap_or(&NULL_NODE)
    }
}

impl core::ops::Index<usize> for Node {
    type Output = Node;

    /// Array indexing; out-of-bounds and non-arrays yield `Null`.
    fn index(&self, idx: usize) -> &Node {
        match self {
            Node::Seq(items) => items.get(idx).unwrap_or(&NULL_NODE),
            _ => &NULL_NODE,
        }
    }
}

impl PartialEq<&str> for Node {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Node {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Node> for &str {
    fn eq(&self, other: &Node) -> bool {
        other.as_str() == Some(*self)
    }
}

/// A deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing an unexpected node kind.
    pub fn expected(what: &str, got: &Node) -> DeError {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

/// Conversion into the [`Node`] tree.
pub trait Serialize {
    /// Serializes `self` into a tree.
    fn to_node(&self) -> Node;
}

/// Conversion out of the [`Node`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a tree.
    fn from_node(node: &Node) -> Result<Self, DeError>;
}

/// Fetches a required object field (support routine for derived impls).
pub fn field<'a>(node: &'a Node, name: &str) -> Result<&'a Node, DeError> {
    match node {
        Node::Map(_) => node
            .get(name)
            .ok_or_else(|| DeError(format!("missing field `{name}`"))),
        other => Err(DeError::expected("object", other)),
    }
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_node(&self) -> Node { Node::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_node(node: &Node) -> Result<Self, DeError> {
                let v = node.as_u64().ok_or_else(|| DeError::expected("unsigned integer", node))?;
                <$t>::try_from(v).map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_node(&self) -> Node {
        Node::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        let v = node
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", node))?;
        usize::try_from(v).map_err(|_| DeError(format!("{v} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_node(&self) -> Node {
                let v = i64::from(*self);
                if v >= 0 { Node::U64(v as u64) } else { Node::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_node(node: &Node) -> Result<Self, DeError> {
                let v = node.as_i64().ok_or_else(|| DeError::expected("integer", node))?;
                <$t>::try_from(v).map_err(|_| DeError(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for u128 {
    fn to_node(&self) -> Node {
        // JSON numbers cap at u64 here; wider values serialize as decimal
        // strings (they round-trip through Deserialize below).
        match u64::try_from(*self) {
            Ok(v) => Node::U64(v),
            Err(_) => Node::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        if let Some(v) = node.as_u64() {
            return Ok(u128::from(v));
        }
        node.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| DeError::expected("unsigned integer", node))
    }
}

impl Serialize for f64 {
    fn to_node(&self) -> Node {
        Node::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        node.as_f64()
            .ok_or_else(|| DeError::expected("number", node))
    }
}

impl Serialize for f32 {
    fn to_node(&self) -> Node {
        Node::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        Ok(f64::from_node(node)? as f32)
    }
}

impl Serialize for bool {
    fn to_node(&self) -> Node {
        Node::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        node.as_bool()
            .ok_or_else(|| DeError::expected("bool", node))
    }
}

impl Serialize for String {
    fn to_node(&self) -> Node {
        Node::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        node.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", node))
    }
}

impl Serialize for str {
    fn to_node(&self) -> Node {
        Node::Str(self.to_string())
    }
}

impl Serialize for Node {
    fn to_node(&self) -> Node {
        self.clone()
    }
}

impl Deserialize for Node {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        Ok(node.clone())
    }
}

// --- containers ----------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::to_node).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Seq(items) => items.iter().map(T::from_node).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::to_node).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Seq(items) => items.iter().map(T::from_node).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_node(&self) -> Node {
        match self {
            Some(v) => v.to_node(),
            None => Node::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Null => Ok(None),
            other => Ok(Some(T::from_node(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_node(&self) -> Node {
        (**self).to_node()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::to_node).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_node(&self) -> Node {
        Node::Seq(vec![self.0.to_node(), self.1.to_node()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Seq(items) if items.len() == 2 => {
                Ok((A::from_node(&items[0])?, B::from_node(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_node(&self) -> Node {
        Node::Seq(vec![self.0.to_node(), self.1.to_node(), self.2.to_node()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Seq(items) if items.len() == 3 => Ok((
                A::from_node(&items[0])?,
                B::from_node(&items[1])?,
                C::from_node(&items[2])?,
            )),
            other => Err(DeError::expected("3-element array", other)),
        }
    }
}

/// Map keys must render as JSON strings.
pub trait SerializeKey {
    /// The key's string form.
    fn key_string(&self) -> String;
}

impl SerializeKey for String {
    fn key_string(&self) -> String {
        self.clone()
    }
}

impl SerializeKey for &str {
    fn key_string(&self) -> String {
        (*self).to_string()
    }
}

macro_rules! impl_key_int {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn key_string(&self) -> String { self.to_string() }
        }
    )*};
}

impl_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl<K: SerializeKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_node(&self) -> Node {
        Node::Map(
            self.iter()
                .map(|(k, v)| (k.key_string(), v.to_node()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_node(&42u64.to_node()).unwrap(), 42);
        assert_eq!(i32::from_node(&(-7i32).to_node()).unwrap(), -7);
        assert_eq!(f64::from_node(&1.5f64.to_node()).unwrap(), 1.5);
        assert_eq!(bool::from_node(&true.to_node()).unwrap(), true);
        assert_eq!(
            String::from_node(&"hi".to_string().to_node()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn big_u64_keeps_precision() {
        let v = u64::MAX - 3;
        assert_eq!(u64::from_node(&v.to_node()).unwrap(), v);
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![Some(1u32), None, Some(3)];
        let node = v.to_node();
        assert_eq!(Vec::<Option<u32>>::from_node(&node).unwrap(), v);
    }

    #[test]
    fn f64_from_integer_node() {
        assert_eq!(f64::from_node(&Node::U64(3)).unwrap(), 3.0);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_node(&Node::U64(300)).is_err());
    }
}

//! Runtime construction — current-thread only.

use crate::exec;
use std::future::Future;

/// Builds a [`Runtime`]. Only the current-thread flavor exists; the
/// enable-`*` switches are accepted and ignored (time is always on).
pub struct Builder {
    _private: (),
}

impl Builder {
    /// A single-threaded runtime builder.
    pub fn new_current_thread() -> Builder {
        Builder { _private: () }
    }

    /// Accepted for API compatibility; the stub clock is always enabled.
    pub fn enable_time(&mut self) -> &mut Builder {
        self
    }

    /// Accepted for API compatibility.
    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    /// Creates the runtime.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` mirrors tokio's signature.
    pub fn build(&mut self) -> std::io::Result<Runtime> {
        Ok(Runtime { _private: () })
    }
}

/// A handle to the single-threaded executor.
pub struct Runtime {
    _private: (),
}

impl Runtime {
    /// Runs `future` (and everything it spawns) to completion.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        exec::block_on(future)
    }
}

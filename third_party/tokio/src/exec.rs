//! The executor core: a thread-local task table, a shared ready queue, and
//! the virtual clock.

use std::cell::RefCell;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// Task id of the `block_on` root future.
pub(crate) const MAIN_TASK: u64 = 0;

/// Nanoseconds per timer-wheel tick (tokio's coarse 1 ms resolution).
pub(crate) const TICK_NS: u64 = 1_000_000;

/// FIFO of task ids whose wakers fired. Shared (`Send + Sync`) so wakers
/// satisfy [`Wake`]'s bounds even though the runtime is single-threaded.
#[derive(Default)]
pub(crate) struct ReadyQueue {
    queue: Mutex<VecDeque<u64>>,
}

impl ReadyQueue {
    fn push(&self, id: u64) {
        let mut q = self.queue.lock().expect("ready queue poisoned");
        if !q.contains(&id) {
            q.push_back(id);
        }
    }

    fn pop(&self) -> Option<u64> {
        self.queue.lock().expect("ready queue poisoned").pop_front()
    }
}

struct TaskWaker {
    id: u64,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// A registered timer: min-heap on `(wake_ns, seq)`.
struct TimerEntry {
    wake_ns: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.wake_ns, self.seq) == (other.wake_ns, other.seq)
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline.
        (other.wake_ns, other.seq).cmp(&(self.wake_ns, self.seq))
    }
}

pub(crate) struct Clock {
    paused: bool,
    /// Authoritative current time while paused (ns since `base`).
    frozen_ns: u64,
    base: std::time::Instant,
    timers: BinaryHeap<TimerEntry>,
    timer_seq: u64,
}

impl Clock {
    fn new() -> Clock {
        Clock {
            paused: false,
            frozen_ns: 0,
            base: std::time::Instant::now(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
        }
    }

    pub(crate) fn now_ns(&self) -> u64 {
        if self.paused {
            self.frozen_ns
        } else {
            self.base.elapsed().as_nanos() as u64
        }
    }

    pub(crate) fn pause(&mut self) {
        if !self.paused {
            self.frozen_ns = self.base.elapsed().as_nanos() as u64;
            self.paused = true;
        }
    }

    pub(crate) fn register_timer(&mut self, wake_ns: u64, waker: Waker) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(TimerEntry {
            wake_ns,
            seq,
            waker,
        });
    }

    /// Advances to the earliest pending timer (jumping the paused clock, or
    /// parking the thread in real time) and returns the fired wakers.
    /// `None` when no timers are pending.
    fn advance_to_next_timer(&mut self) -> Option<Vec<Waker>> {
        let earliest = self.timers.peek()?.wake_ns;
        if self.paused {
            self.frozen_ns = self.frozen_ns.max(earliest);
        } else {
            let now = self.base.elapsed().as_nanos() as u64;
            if earliest > now {
                std::thread::sleep(std::time::Duration::from_nanos(earliest - now));
            }
        }
        let now = self.now_ns();
        let mut fired = Vec::new();
        while let Some(e) = self.timers.peek() {
            if e.wake_ns > now {
                break;
            }
            fired.push(self.timers.pop().expect("peeked").waker);
        }
        Some(fired)
    }
}

/// Marks task `id` runnable (used by `spawn`, which holds the queue handle
/// outside the executor borrow).
pub(crate) fn wake_task(ready: &Arc<ReadyQueue>, id: u64) {
    ready.push(id);
}

type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;

pub(crate) struct Executor {
    pub(crate) tasks: HashMap<u64, TaskFuture>,
    pub(crate) next_id: u64,
    pub(crate) ready: Arc<ReadyQueue>,
    pub(crate) clock: Clock,
}

thread_local! {
    static EXECUTOR: RefCell<Option<Executor>> = const { RefCell::new(None) };
}

/// Runs `f` with the current executor; panics outside `block_on`.
pub(crate) fn with_executor<R>(what: &str, f: impl FnOnce(&mut Executor) -> R) -> R {
    EXECUTOR.with(|e| {
        let mut slot = e.borrow_mut();
        let ex = slot
            .as_mut()
            .unwrap_or_else(|| panic!("tokio stub: {what} requires a running runtime"));
        f(ex)
    })
}

/// Like [`with_executor`] but tolerates running outside a runtime.
pub(crate) fn try_with_executor<R>(f: impl FnOnce(&mut Executor) -> R) -> Option<R> {
    EXECUTOR.with(|e| e.borrow_mut().as_mut().map(f))
}

/// Drives `fut` (and every spawned task) to completion.
pub(crate) fn block_on<F: Future>(fut: F) -> F::Output {
    let ready = Arc::new(ReadyQueue::default());
    let installed = EXECUTOR.with(|e| {
        let mut slot = e.borrow_mut();
        if slot.is_some() {
            panic!("tokio stub: nested block_on is not supported");
        }
        *slot = Some(Executor {
            tasks: HashMap::new(),
            next_id: MAIN_TASK + 1,
            ready: ready.clone(),
            clock: Clock::new(),
        });
    });
    let _ = installed;

    let mut main_fut = Box::pin(fut);
    let main_waker = Waker::from(Arc::new(TaskWaker {
        id: MAIN_TASK,
        ready: ready.clone(),
    }));
    ready.push(MAIN_TASK);

    let output = loop {
        match ready.pop() {
            Some(MAIN_TASK) => {
                let mut cx = Context::from_waker(&main_waker);
                if let Poll::Ready(v) = main_fut.as_mut().poll(&mut cx) {
                    break v;
                }
            }
            Some(id) => {
                // Take the task out of the table so the poll itself can
                // spawn/sleep (both re-enter the executor cell).
                let task =
                    EXECUTOR.with(|e| e.borrow_mut().as_mut().and_then(|ex| ex.tasks.remove(&id)));
                if let Some(mut task) = task {
                    let waker = Waker::from(Arc::new(TaskWaker {
                        id,
                        ready: ready.clone(),
                    }));
                    let mut cx = Context::from_waker(&waker);
                    if task.as_mut().poll(&mut cx).is_pending() {
                        EXECUTOR.with(|e| {
                            if let Some(ex) = e.borrow_mut().as_mut() {
                                ex.tasks.insert(id, task);
                            }
                        });
                    }
                }
            }
            None => {
                // Nothing runnable: advance the clock to the next timer.
                let fired = EXECUTOR
                    .with(|e| {
                        e.borrow_mut()
                            .as_mut()
                            .map(|ex| ex.clock.advance_to_next_timer())
                    })
                    .flatten();
                match fired {
                    Some(wakers) => {
                        for w in wakers {
                            w.wake();
                        }
                    }
                    None => panic!("tokio stub: deadlock — no runnable task and no pending timer"),
                }
            }
        }
    };

    // Tear down: drop leftover tasks outside the executor borrow, since
    // their destructors may fire channel wakers.
    let leftovers = EXECUTOR.with(|e| e.borrow_mut().take());
    drop(leftovers);
    output
}

//! Synchronization primitives: unbounded mpsc channels.

pub mod mpsc {
    //! Multi-producer single-consumer channels (unbounded flavor only).

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    struct Chan<T> {
        queue: VecDeque<T>,
        recv_waker: Option<Waker>,
        senders: usize,
        receiver_alive: bool,
    }

    /// Error returned by [`UnboundedSender::send`] when the receiver is
    /// gone; carries the unsent value.
    pub struct SendError<T>(pub T);

    impl<T> core::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> core::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("channel closed")
        }
    }

    /// The sending half; clonable.
    pub struct UnboundedSender<T> {
        chan: Arc<Mutex<Chan<T>>>,
    }

    /// The receiving half.
    pub struct UnboundedReceiver<T> {
        chan: Arc<Mutex<Chan<T>>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
        let chan = Arc::new(Mutex::new(Chan {
            queue: VecDeque::new(),
            recv_waker: None,
            senders: 1,
            receiver_alive: true,
        }));
        (
            UnboundedSender { chan: chan.clone() },
            UnboundedReceiver { chan },
        )
    }

    impl<T> UnboundedSender<T> {
        /// Queues `value`; fails (returning the value) when the receiver
        /// was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let waker = {
                let mut c = self.chan.lock().expect("channel poisoned");
                if !c.receiver_alive {
                    return Err(SendError(value));
                }
                c.queue.push_back(value);
                c.recv_waker.take()
            };
            if let Some(w) = waker {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().expect("channel poisoned").senders += 1;
            UnboundedSender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for UnboundedSender<T> {
        fn drop(&mut self) {
            let waker = {
                let mut c = self.chan.lock().expect("channel poisoned");
                c.senders -= 1;
                if c.senders == 0 {
                    c.recv_waker.take()
                } else {
                    None
                }
            };
            if let Some(w) = waker {
                w.wake();
            }
        }
    }

    impl<T> UnboundedReceiver<T> {
        /// Receives the next value; `None` once every sender is dropped and
        /// the queue is drained.
        pub async fn recv(&mut self) -> Option<T> {
            std::future::poll_fn(|cx| self.poll_recv(cx)).await
        }

        /// Poll-level receive, for hand-rolled select loops.
        pub fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<Option<T>> {
            let mut c = self.chan.lock().expect("channel poisoned");
            if let Some(v) = c.queue.pop_front() {
                return Poll::Ready(Some(v));
            }
            if c.senders == 0 {
                return Poll::Ready(None);
            }
            c.recv_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    impl<T> Drop for UnboundedReceiver<T> {
        fn drop(&mut self) {
            self.chan.lock().expect("channel poisoned").receiver_alive = false;
        }
    }
}

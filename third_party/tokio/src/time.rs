//! The virtual clock: `Instant`, `sleep`/`sleep_until`, `pause`.
//!
//! Timer-wheel semantics match what the testbed calibrated against in real
//! tokio: the wheel ticks once per millisecond, and a sleep completes at the
//! first tick *strictly after* its deadline. `sleep(Duration::ZERO)` thus
//! consumes exactly one tick, and an aligned n-ms target needs
//! `sleep(n-1 ms)`.

use crate::exec::{self, TICK_NS};
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

/// A measurement of the runtime clock: frozen-virtual while paused,
/// wall-clock otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant {
    /// Nanoseconds since the runtime's clock base.
    ns: u64,
}

impl Instant {
    /// The current instant on the runtime clock.
    ///
    /// # Panics
    ///
    /// Panics outside a runtime.
    pub fn now() -> Instant {
        let ns = exec::with_executor("Instant::now", |ex| ex.clock.now_ns());
        Instant { ns }
    }

    /// Time elapsed from `earlier` to `self` (saturating at zero).
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.ns.saturating_sub(earlier.ns))
    }

    /// Time elapsed since this instant.
    pub fn elapsed(&self) -> Duration {
        Instant::now().duration_since(*self)
    }
}

impl core::ops::Add<Duration> for Instant {
    type Output = Instant;

    fn add(self, rhs: Duration) -> Instant {
        Instant {
            ns: self.ns + rhs.as_nanos() as u64,
        }
    }
}

impl core::ops::AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.ns += rhs.as_nanos() as u64;
    }
}

impl core::ops::Sub<Duration> for Instant {
    type Output = Instant;

    fn sub(self, rhs: Duration) -> Instant {
        Instant {
            ns: self.ns.saturating_sub(rhs.as_nanos() as u64),
        }
    }
}

impl core::ops::Sub<Instant> for Instant {
    type Output = Duration;

    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

/// Freezes the clock at its current reading; from here on time only moves
/// when the executor has nothing runnable, jumping straight to the next
/// pending timer (tokio's `start_paused` auto-advance).
pub fn pause() {
    exec::with_executor("time::pause", |ex| ex.clock.pause());
}

/// A future that completes at the first millisecond tick strictly after its
/// deadline.
pub struct Sleep {
    wake_ns: u64,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let now = exec::with_executor("sleep", |ex| ex.clock.now_ns());
        if now >= self.wake_ns {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let wake_ns = self.wake_ns;
            let waker = cx.waker().clone();
            exec::with_executor("sleep", |ex| ex.clock.register_timer(wake_ns, waker));
        }
        Poll::Pending
    }
}

/// Sleeps for `duration` (tick-quantized; see module docs).
pub fn sleep(duration: Duration) -> Sleep {
    sleep_until(Instant::now() + duration)
}

/// Sleeps until the first tick strictly after `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep {
        wake_ns: (deadline.ns / TICK_NS + 1) * TICK_NS,
        registered: false,
    }
}

//! Task spawning and join handles.

use crate::exec;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

struct JoinState<T> {
    result: Option<Result<T, JoinError>>,
    waker: Option<Waker>,
}

/// Error returned when a task was aborted before completing.
#[derive(Debug, Clone)]
pub struct JoinError {
    cancelled: bool,
}

impl JoinError {
    fn cancelled_err() -> JoinError {
        JoinError { cancelled: true }
    }

    /// True when the task was cancelled via [`JoinHandle::abort`].
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }
}

impl core::fmt::Display for JoinError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(if self.cancelled {
            "task was cancelled"
        } else {
            "task failed"
        })
    }
}

impl std::error::Error for JoinError {}

/// An owned handle to a spawned task: awaitable, abortable.
pub struct JoinHandle<T> {
    id: u64,
    state: Arc<Mutex<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Cancels the task. Idempotent; a completed task keeps its result.
    pub fn abort(&self) {
        // Drop the future outside the executor borrow — its destructor may
        // close channels and fire wakers that re-enter the runtime.
        let task = exec::try_with_executor(|ex| ex.tasks.remove(&self.id)).flatten();
        drop(task);
        let waker = {
            let mut st = self.state.lock().expect("join state poisoned");
            if st.result.is_none() {
                st.result = Some(Err(JoinError::cancelled_err()));
                st.waker.take()
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.state.lock().expect("join state poisoned");
        match st.result.take() {
            Some(r) => Poll::Ready(r),
            None => {
                st.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Spawns `future` onto the current runtime.
///
/// Unlike real tokio this runtime is single-threaded, so no `Send` bound is
/// required.
///
/// # Panics
///
/// Panics when called outside [`crate::runtime::Runtime::block_on`].
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let state = Arc::new(Mutex::new(JoinState {
        result: None,
        waker: None,
    }));
    let completion = state.clone();
    let wrapped = async move {
        let out = future.await;
        let waker = {
            let mut st = completion.lock().expect("join state poisoned");
            // An abort that raced completion wins; keep the first result.
            if st.result.is_none() {
                st.result = Some(Ok(out));
            }
            st.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    };
    let (id, ready) = exec::with_executor("spawn", |ex| {
        let id = ex.next_id;
        ex.next_id += 1;
        ex.tasks.insert(id, Box::pin(wrapped));
        (id, ex.ready.clone())
    });
    exec::wake_task(&ready, id);
    JoinHandle { id, state }
}

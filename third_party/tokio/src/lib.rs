#![allow(clippy::all)]
//! Offline stand-in for `tokio`.
//!
//! A deliberately small, single-threaded async runtime covering the surface
//! the testbed crate uses:
//!
//! * [`runtime::Builder::new_current_thread`] / [`runtime::Runtime::block_on`],
//! * [`spawn`] with [`JoinHandle`] (awaitable, abortable),
//! * [`sync::mpsc`] unbounded channels with `poll_recv`,
//! * [`time`]: a pausable virtual clock with tokio's millisecond timer-wheel
//!   semantics — a sleep wakes at the first whole-millisecond tick *strictly
//!   after* its deadline (the testbed's stochastic-rounding logic and its
//!   timing tests depend on this exact rule),
//! * the `#[tokio::test]` attribute (re-exported from `tokio-macros`).
//!
//! In paused mode the clock jumps to the earliest pending timer whenever no
//! task is runnable, so paused tests run at full speed and fully
//! deterministically. In real-time mode the executor parks the thread until
//! the next timer is due.

mod exec;

pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::{spawn, JoinError, JoinHandle};
pub use tokio_macros::tokio_test as test;

#![allow(clippy::all)]
//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the [`serde`] stub's [`Node`] tree as JSON. Covers the
//! workspace's usage: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`Value`] (an alias of `Node`, which carries the `Index`/`as_*`
//! accessors), and [`Error`].

use serde::{Deserialize, Node, Serialize};

/// Dynamic JSON value — the serde stub's tree type directly.
pub type Value = Node;

/// A JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.0)
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the tree model used here; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_node(), &mut out);
    Ok(out)
}

/// Serializes `value` to pretty JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the tree model used here.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_node(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type (including [`Value`]).
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch for `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let node = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_node(&node)?)
}

// --- printing ------------------------------------------------------------

fn write_compact(node: &Node, out: &mut String) {
    match node {
        Node::Null => out.push_str("null"),
        Node::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Node::U64(v) => out.push_str(&v.to_string()),
        Node::I64(v) => out.push_str(&v.to_string()),
        Node::F64(v) => write_f64(*v, out),
        Node::Str(s) => write_escaped(s, out),
        Node::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Node::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(node: &Node, indent: usize, out: &mut String) {
    match node {
        Node::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Node::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` prints the shortest representation that round-trips; force a
        // decimal point so integral floats stay distinguishable as numbers
        // with fractional type (matches serde_json's `1.0`).
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // serde_json maps non-finite floats to null.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Node, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Node::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Node::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Node::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Node::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, node: Node) -> Result<Node, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(node)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Node, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Node::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Node::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Node, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Node::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Node::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                core::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by in-repo data;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Node, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_frac = false;
        let mut saw_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_frac && !saw_exp => {
                    saw_frac = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !saw_frac && !saw_exp {
            // Integral literal: keep 64-bit precision (nanosecond stamps
            // exceed 2^53 and must not round-trip through f64).
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 + 1 {
                        return Ok(Node::I64((v as i64).wrapping_neg()));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Node::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Node::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let text = r#"{"a": 1, "b": [1.5, -2, "x\n"], "c": {"d": true, "e": null}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0].as_f64(), Some(1.5));
        assert_eq!(v["b"][1].as_i64(), Some(-2));
        assert_eq!(v["b"][2], "x\n");
        assert!(v["c"]["d"].is_boolean());
        assert!(v["c"]["e"].is_null());
        assert!(v["missing"].is_null());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn big_integers_keep_precision() {
        let n = u64::MAX - 7;
        let text = format!("{{\"t\": {n}}}");
        let v: Value = from_str(&text).unwrap();
        assert_eq!(v["t"].as_u64(), Some(n));
        assert_eq!(to_string(&v).unwrap(), format!("{{\"t\":{n}}}"));
    }

    #[test]
    fn floats_print_with_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"open").is_err());
        assert!(from_str::<Value>("nope").is_err());
    }

    #[test]
    fn pretty_format_shape() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty() {
        let v: Value = from_str(r#"{"a":[],"b":{}}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [],\n  \"b\": {}\n}"
        );
    }
}

#![allow(clippy::all)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the handful of `rand` APIs the workspace actually
//! uses are vendored here: [`rngs::SmallRng`] (xoshiro256++ seeded through
//! SplitMix64), [`SeedableRng::seed_from_u64`], the generic
//! [`Rng::random`]/[`Rng::random_range`] entry points, and
//! [`seq::index::sample`].
//!
//! Only determinism and statistical quality matter to the simulator — any
//! fixed, well-mixed generator is acceptable — so the implementation favors
//! clarity over completeness. The streams differ from upstream `rand`; all
//! in-repo tests assert self-consistency, never specific draws.

/// Seeding support: the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform generation of a primitive from raw 64-bit output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn draw<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn draw<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A type usable as the bound of [`Rng::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 cannot happen
                // for the integer widths below because lo < hi.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut l = m as u64;
                if l < span {
                    let t = span.wrapping_neg() % span;
                    while l < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        l = m as u64;
                    }
                }
                lo + (m >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in random_range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience generation methods, blanket-implemented for every generator.
pub trait Rng: RngCore + Sized {
    /// A uniform draw of `T` (integers over their full range, `f64` in
    /// `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform draw from `range` (half-open).
    #[inline]
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Extension-trait alias kept for source compatibility with callers that
/// import it; all methods live on [`Rng`].
pub trait RngExt: Rng {}

impl<R: Rng> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    pub mod index {
        //! Index sampling without replacement.

        use crate::{Rng, RngCore};

        /// A sampled set of indices (compatibility shell around `Vec`).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`, in
        /// random order.
        ///
        /// # Panics
        ///
        /// Panics when `amount > length`.
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            if amount == 0 {
                return IndexVec(Vec::new());
            }
            // For dense requests, a partial Fisher-Yates over the full index
            // set; for sparse requests, rejection off a hash set. Both give
            // every amount-subset-permutation equal probability.
            if amount * 3 >= length {
                let mut pool: Vec<usize> = (0..length).collect();
                for i in 0..amount {
                    let j = i + rng.random_range(0..length - i);
                    pool.swap(i, j);
                }
                pool.truncate(amount);
                IndexVec(pool)
            } else {
                let mut seen = std::collections::HashSet::with_capacity(amount * 2);
                let mut out = Vec::with_capacity(amount);
                while out.len() < amount {
                    let idx = rng.random_range(0..length);
                    if seen.insert(idx) {
                        out.push(idx);
                    }
                }
                IndexVec(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.random_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_distinct() {
        let mut r = SmallRng::seed_from_u64(4);
        for &(n, k) in &[(10usize, 10usize), (100, 3), (50, 25)] {
            let mut v = super::seq::index::sample(&mut r, n, k).into_vec();
            assert_eq!(v.len(), k);
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), k, "duplicates for n={n} k={k}");
        }
    }
}

//! Sensing-as-a-Service demo: the paper's §IV.E testbed, live.
//!
//! Spins up the in-process tokio testbed — 32 emulated Raspberry-Pi edge
//! nodes in four heterogeneous clusters, each holding months of synthetic
//! temperature/humidity records — and serves class A/B/C sensing queries
//! under TailGuard, printing the per-cluster response-time profile, the
//! per-class tail latencies against their SLOs, and the merged sensing
//! answer.
//!
//! Runs in *real time* (compressed 50×), so expect it to take a few
//! seconds; pass `--fast` to use the paused clock instead.
//!
//! Run with: `cargo run --release --example sensing_service [-- --fast]`

// Printing is this example's interface.
#![allow(clippy::print_stdout)]
use tailguard_policy::Policy;
use tailguard_testbed::{run_testbed, TestbedConfig, TestbedMode};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let mode = if fast {
        TestbedMode::PausedTime
    } else {
        TestbedMode::RealTime
    };
    let cfg = TestbedConfig {
        policy: Policy::TfEdf,
        queries: 1_500,
        target_load: 0.35,
        time_scale: 50.0,
        calibration_probes: 30,
        mode,
        store_days: 540, // full eighteen-month history
        ..TestbedConfig::default()
    };

    println!("Sensing-as-a-Service testbed: 32 edge nodes / 4 clusters, TailGuard,");
    println!(
        "35% load, {} queries, {} clock (time compressed {}x)\n",
        cfg.queries,
        if fast { "paused" } else { "real" },
        cfg.time_scale
    );
    let mut report = run_testbed(&cfg);

    println!("Per-cluster task post-queuing times (paper Fig. 9a):");
    println!(
        "  {:<12} {:>10} {:>10} {:>10} {:>8}",
        "cluster", "mean (ms)", "p95 (ms)", "p99 (ms)", "load"
    );
    for c in &report.clusters {
        println!(
            "  {:<12} {:>10.0} {:>10.0} {:>10.0} {:>7.0}%",
            c.name,
            c.mean_ms,
            c.p95_ms,
            c.p99_ms,
            c.load * 100.0
        );
    }

    println!("\nPer-class 99th percentile latency vs SLO:");
    let slos = report.slos.clone();
    for (class, name) in [
        (0u8, "A (device monitor)"),
        (1, "B (area overview)"),
        (2, "C (history pull)"),
    ] {
        let p99 = report.class_p99_ms(class);
        let slo = slos[class as usize].as_millis_f64();
        println!(
            "  class {name:<20} p99 = {:>6.0} ms   SLO {:>6.0} ms   {}",
            p99,
            slo,
            if p99 <= slo { "met" } else { "VIOLATED" }
        );
    }

    let (t, h) = report.mean_reading;
    println!(
        "\nAggregated sensing answer: mean temperature {t:.1} C, humidity {h:.0}%  \
         ({} records retrieved, {:.2}% of tasks missed their queuing deadline)",
        report.records_retrieved,
        report.miss_ratio * 100.0
    );
}

//! Quickstart: compare TailGuard (TF-EDFQ) against FIFO on the paper's
//! single-class Masstree scenario (Fig. 4a) and print the maximum load each
//! policy sustains while meeting the 99th-percentile SLO.
//!
//! Run with: `cargo run --release --example quickstart`

// Printing is this example's interface.
#![allow(clippy::print_stdout)]
use tailguard::{max_load, measure_at_load, scenarios, MaxLoadOptions};
use tailguard_policy::Policy;
use tailguard_workload::TailbenchWorkload;

fn main() {
    let opts = MaxLoadOptions {
        queries: 120_000,
        tolerance: 0.02,
        ..MaxLoadOptions::default()
    };

    println!("TailGuard quickstart — Masstree, single class, fanouts {{1,10,100}}");
    println!("{:-<72}", "");
    for slo_ms in [0.8, 1.0, 1.2, 1.4] {
        let scenario = scenarios::single_class(TailbenchWorkload::Masstree, slo_ms, 100);
        let tg = max_load(&scenario, Policy::TfEdf, &opts);
        let fifo = max_load(&scenario, Policy::Fifo, &opts);
        println!(
            "x99 SLO {slo_ms:>4.1} ms   TailGuard {:>5.1}%   FIFO {:>5.1}%   gain {:>+5.1}%",
            tg * 100.0,
            fifo * 100.0,
            (tg / fifo - 1.0) * 100.0
        );
    }

    // Show a per-type breakdown at TailGuard's max load for the 1.0ms SLO.
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let load = max_load(&scenario, Policy::TfEdf, &opts);
    let mut report = measure_at_load(&scenario, Policy::TfEdf, load, &opts);
    println!(
        "\nPer-type tails at TailGuard's max load ({:.0}%):",
        load * 100.0
    );
    print!("{}", report.render_table());
}

//! Query admission control under overload — §III.C / Fig. 7.
//!
//! Drives the Masstree OLDI two-class cluster 20 % past its maximum
//! acceptable load, once without and once with TailGuard's moving-window
//! admission controller, and prints what each user population experiences.
//!
//! Run with: `cargo run --release --example admission_control`

// Printing is this example's interface.
#![allow(clippy::print_stdout)]
use tailguard::{
    max_load, measure_at_load, run_simulation, scenarios, AdmissionConfig, MaxLoadOptions,
};
use tailguard_policy::Policy;
use tailguard_simcore::SimDuration;
use tailguard_workload::TailbenchWorkload;

fn main() {
    let (hi, lo) = scenarios::fig6_slos(TailbenchWorkload::Masstree);
    let scenario = scenarios::oldi_two_class(TailbenchWorkload::Masstree, hi, lo);
    let opts = MaxLoadOptions {
        queries: 40_000,
        ..MaxLoadOptions::default()
    };

    // Calibrate: maximum acceptable load and the violation ratio there.
    let max_acceptable = max_load(&scenario, Policy::TfEdf, &opts) * 0.95;
    let calib = measure_at_load(&scenario, Policy::TfEdf, max_acceptable, &opts);
    let r_th = (calib.deadline_miss_ratio() * 0.5).max(0.001);
    println!(
        "maximum acceptable load = {:.0}%   R_th = {:.2}%",
        max_acceptable * 100.0,
        r_th * 100.0
    );

    let overload = max_acceptable * 1.2;
    println!(
        "\nDriving the cluster at {:.0}% offered load (20% past acceptable):\n",
        overload * 100.0
    );

    // Without admission control.
    let input = scenario.input(overload, opts.queries);
    let mut without = run_simulation(
        &scenario
            .config(Policy::TfEdf)
            .with_warmup(opts.queries / 20),
        &input,
    );
    // With admission control (30-query reaction window, hysteresis).
    let window = SimDuration::from_millis_f64(30.0 / scenario.rate_for_load(max_acceptable));
    let admission = AdmissionConfig::new(window, r_th).with_resume_threshold(r_th * 0.3);
    let mut with = run_simulation(
        &scenario
            .config(Policy::TfEdf)
            .with_admission(admission)
            .with_warmup(opts.queries / 20),
        &input,
    );

    println!("{:<26} {:>14} {:>14}", "", "no admission", "with admission");
    println!(
        "{:<26} {:>13.1}% {:>13.1}%",
        "accepted load",
        without.accepted_load() * 100.0,
        with.accepted_load() * 100.0
    );
    println!(
        "{:<26} {:>13.1}% {:>13.1}%",
        "rejected load",
        without.rejected_load() * 100.0,
        with.rejected_load() * 100.0
    );
    println!(
        "{:<26} {:>11.3} ms {:>11.3} ms   (SLO {:.1} ms)",
        "class I p99",
        without.class_tail(0, 0.99).as_millis_f64(),
        with.class_tail(0, 0.99).as_millis_f64(),
        hi
    );
    println!(
        "{:<26} {:>11.3} ms {:>11.3} ms   (SLO {:.1} ms)",
        "class II p99",
        without.class_tail(1, 0.99).as_millis_f64(),
        with.class_tail(1, 0.99).as_millis_f64(),
        lo
    );
    println!(
        "{:<26} {:>14} {:>14}",
        "queries rejected", without.rejected_queries, with.rejected_queries
    );
    println!("\nWithout the controller every admitted query suffers; with it, a fraction");
    println!("of queries is turned away and the admitted ones keep (near-)SLO tails.");
}

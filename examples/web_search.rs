//! Web search (OLDI) scenario — §IV.C of the paper.
//!
//! Every query touches all 100 servers (fanout = N, as in large online
//! search products), with two service classes: interactive searches
//! (x99 ≤ 10 ms) and lower-priority searches (x99 ≤ 15 ms), on the Xapian
//! workload. Reproduces the Fig. 6(e)(f) comparison: FIFO is limited by the
//! tight class, PRIQ starves the loose class, and TailGuard balances both.
//!
//! Run with: `cargo run --release --example web_search`

// Printing is this example's interface.
#![allow(clippy::print_stdout)]
use tailguard::{scenarios, sweep_loads, MaxLoadOptions};
use tailguard_policy::Policy;
use tailguard_workload::TailbenchWorkload;

fn main() {
    let scenario = scenarios::oldi_two_class(TailbenchWorkload::Xapian, 10.0, 15.0);
    let opts = MaxLoadOptions {
        queries: 30_000,
        ..MaxLoadOptions::default()
    };
    let loads: Vec<f64> = (4..=12).map(|i| i as f64 * 0.05).collect();

    println!("Web search (OLDI): Xapian, fanout 100, SLOs 10/15 ms");
    println!("{:-<76}", "");
    for policy in [Policy::Fifo, Policy::Priq, Policy::TfEdf] {
        let pts = sweep_loads(&scenario, policy, &loads, &opts);
        println!("\n{policy}:");
        println!(
            "  {:>8} {:>16} {:>16} {:>8}",
            "load", "class I p99 (ms)", "class II p99 (ms)", "SLOs ok"
        );
        for p in &pts {
            println!(
                "  {:>7.0}% {:>16.2} {:>17.2} {:>8}",
                p.load * 100.0,
                p.tails_by_class[&0].as_millis_f64(),
                p.tails_by_class[&1].as_millis_f64(),
                if p.meets { "yes" } else { "NO" }
            );
        }
        let max_ok = pts
            .iter()
            .filter(|p| p.meets)
            .map(|p| p.load)
            .fold(0.0_f64, f64::max);
        println!("  -> max load meeting both SLOs: {:.0}%", max_ok * 100.0);
    }
    println!("\nExpected shape (paper Fig. 6e/f): FIFO ~49%, PRIQ ~45%, TailGuard ~58%.");
}

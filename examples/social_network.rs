//! Social-network scenario: Facebook-like fanouts with per-class SLOs.
//!
//! The paper motivates TailGuard with social-networking services whose
//! query fanout ranges from one to several hundred with most queries small
//! (§II.A cites 65 % under 20). This example builds a `P(k) ∝ 1/k` fanout
//! distribution over 1..=100, three service classes (paying users get the
//! tightest SLO), and shows the core claim end-to-end: a *small-fanout,
//! tight-SLO* query can demand **less** urgency than a *large-fanout,
//! loose-SLO* query — the reason class-based priority scheduling cannot
//! achieve the design objective.
//!
//! Run with: `cargo run --release --example social_network`

// Printing is this example's interface.
#![allow(clippy::print_stdout)]
use tailguard::{max_load, ClassSpec, DeadlineEstimator, EstimatorMode, MaxLoadOptions, Scenario};
use tailguard_policy::Policy;
use tailguard_simcore::SimDuration;
use tailguard_workload::{ArrivalProcess, ClassShare, FanoutDist, QueryMix, TailbenchWorkload};

fn main() {
    let workload = TailbenchWorkload::Masstree;
    let classes = vec![
        ClassSpec::p99(SimDuration::from_millis_f64(0.9)), // premium
        ClassSpec::p99(SimDuration::from_millis_f64(1.1)), // standard
        ClassSpec::p99(SimDuration::from_millis_f64(2.0)), // background
    ];
    let mix = QueryMix::new(vec![
        ClassShare {
            class: 0,
            probability: 0.2,
            fanout: FanoutDist::facebook_like(100),
        },
        ClassShare {
            class: 1,
            probability: 0.5,
            fanout: FanoutDist::facebook_like(100),
        },
        ClassShare {
            class: 2,
            probability: 0.3,
            fanout: FanoutDist::facebook_like(100),
        },
    ]);
    let cluster = tailguard::ClusterSpec::homogeneous(100, workload.service_dist());
    let scenario = Scenario {
        label: "social network, facebook-like fanouts, 3 classes".into(),
        cluster: cluster.clone(),
        classes: classes.clone(),
        mix,
        arrival: ArrivalProcess::poisson(1.0),
        mean_task_work_ms: workload.mean_service_ms(),
        placement: None,
        seed: 0x50C1A1,
        drift: None,
    };

    // --- The paper's §I observation, concretely. -------------------------
    let mut est = DeadlineEstimator::new(&cluster, classes, EstimatorMode::Analytic);
    let tight_small = est.budget(0, 2, &[]); // premium, fanout 2
    let loose_large = est.budget(1, 100, &[]); // standard, fanout 100
    println!("Per-query budgets (pre-dequeuing slack, Eq. 6):");
    println!(
        "  premium  (x99=0.9ms) fanout   2: T_b = {:.3} ms",
        tight_small.as_millis_f64()
    );
    println!(
        "  standard (x99=1.1ms) fanout 100: T_b = {:.3} ms",
        loose_large.as_millis_f64()
    );
    assert!(
        loose_large < tight_small,
        "expected the paper's Sec. I inversion with these SLOs"
    );
    println!("  -> the LOWER class / HIGHER fanout query is the more urgent one;");
    println!("     strict class priority (PRIQ) orders these two backwards.\n");

    // --- Max sustainable load per policy. --------------------------------
    let opts = MaxLoadOptions {
        queries: 100_000,
        tolerance: 0.02,
        ..MaxLoadOptions::default()
    };
    println!("Max load meeting all three SLOs ({}):", scenario.label);
    for policy in Policy::ALL {
        let load = max_load(&scenario, policy, &opts);
        println!("  {:<10} {:>5.1}%", policy.name(), load * 100.0);
    }
}

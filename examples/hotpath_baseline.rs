//! Single-thread hot-path measurement with identical parameters to
//! `measure_serial` in crates/bench/benches/perf_throughput.rs, so the
//! printed queries/sec is directly comparable across trees. This is the
//! methodology behind `BENCH_baseline_prechange.json`: run this binary at
//! the tree under comparison, take the best of the 15 repetitions, and
//! interleave runs when comparing two trees on a shared host.

// Printing is this example's interface.
#![allow(clippy::print_stdout)]
use std::time::Instant;
use tailguard_repro::policy::Policy;
use tailguard_repro::tailguard::{run_simulation, scenarios};
use tailguard_repro::workload::TailbenchWorkload;

fn main() {
    let queries = 60_000usize;
    let scenario = scenarios::single_class(TailbenchWorkload::Masstree, 1.0, 100);
    let input = scenario.input(0.5, queries);
    let config = scenario.config(Policy::TfEdf).with_warmup(queries / 20);
    // Warm once, then report each of 15 timed repetitions.
    let _ = run_simulation(&config, &input);
    for rep in 0..15 {
        let start = Instant::now();
        let report = run_simulation(&config, &input);
        let wall = start.elapsed().as_secs_f64();
        println!(
            "rep {rep}: wall_secs {:.4} completed {} queries_per_sec {:.0}",
            wall,
            report.completed_queries,
            report.completed_queries as f64 / wall
        );
    }
}
